#include "timing/sta.h"

#include <algorithm>
#include <climits>
#include <limits>

#include "util/parallel.h"

namespace mft {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum vertices per arena chunk. Below these the dispatch overhead beats
// the work and parallel_for runs the body inline; tuning them only moves
// where parallelism kicks in, never the results.
constexpr int kDelayGrain = 96;  ///< delay recompute (load-term dot products)
constexpr int kSweepGrain = 64;  ///< AT/RT level sweeps (arc min/max folds)

bool multi_thread(const ThreadArena* arena) {
  return arena != nullptr && arena->threads() > 1;
}

// Recomputes every per-vertex delay, streaming the plan's load CSR in
// sweep-position order. Shared by the two-arg run_sta and the scratch
// overload's first run so the full and incremental paths cannot drift
// apart.
void full_delay_pos(const SweepPlan& pl, const std::vector<double>& sizes_pos,
                    std::vector<double>& delay_pos, ThreadArena* arena,
                    bool fast) {
  delay_pos.resize(static_cast<std::size_t>(pl.n));
  auto body = [&](int, int begin, int end) {
    if (fast) {
      for (int p = begin; p < end; ++p)
        delay_pos[static_cast<std::size_t>(p)] = pl.delay_at_fast(p, sizes_pos);
    } else {
      for (int p = begin; p < end; ++p)
        delay_pos[static_cast<std::size_t>(p)] = pl.delay_at(p, sizes_pos);
    }
  };
  if (multi_thread(arena))
    arena->parallel_for(pl.n, kDelayGrain, body);
  else
    body(0, 0, pl.n);
}

// Forward/backward sweeps over already-computed per-vertex delays, in
// sweep-position order (a valid topological order — SweepPlan). Shared by
// the full and incremental paths so both produce identical reports.
//
// Bit-identity to the historical id-space topological walk: every fanin/
// fanout fold reads only strictly earlier/later levels (fully settled in
// either walk order) and folds the vertex's own arc list in its original
// stored order; the cp winner "first in topological order attaining the
// max" is equivalently "max end, lowest topological position on exact
// ties", which is the explicit rule used here and by the parallel merge.
void run_sweeps_sequential(const SweepPlan& pl,
                           const std::vector<double>& delay_pos,
                           std::vector<double>& at_pos,
                           std::vector<double>& rt_pos, double& critical_path,
                           NodeId& cp_vertex) {
  const int n = pl.n;
  at_pos.resize(static_cast<std::size_t>(n));
  rt_pos.resize(static_cast<std::size_t>(n));

  // Forward: AT(v) = max over fanin j of AT(j) + delay(j); 0 at sources.
  critical_path = 0.0;
  cp_vertex = kInvalidNode;
  int cp_tp = INT_MAX;
  for (int p = 0; p < n; ++p) {
    const std::size_t pi = static_cast<std::size_t>(p);
    double at = 0.0;
    for (int k = pl.fanin_off[pi]; k < pl.fanin_off[pi + 1]; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(pl.fanin_pos[static_cast<std::size_t>(k)]);
      at = std::max(at, at_pos[j] + delay_pos[j]);
    }
    at_pos[pi] = at;
    const double end = at + delay_pos[pi];
    const int tp = pl.topo_pos[pi];
    if (cp_vertex == kInvalidNode || end > critical_path ||
        (end == critical_path && tp < cp_tp)) {
      critical_path = end;
      cp_vertex = pl.vid[pi];
      cp_tp = tp;
    }
  }

  // Backward: RT(v) = CP − delay(v) at POs, min over fanouts elsewhere.
  for (int p = n - 1; p >= 0; --p) {
    const std::size_t pi = static_cast<std::size_t>(p);
    double rt = kInf;
    if (pl.sink[pi]) rt = critical_path - delay_pos[pi];
    for (int k = pl.fanout_off[pi]; k < pl.fanout_off[pi + 1]; ++k)
      rt = std::min(rt, rt_pos[static_cast<std::size_t>(pl.fanout_pos[
                             static_cast<std::size_t>(k)])] -
                            delay_pos[pi]);
    rt_pos[pi] = rt;
  }
}

// Level-parallel sweeps: a level is a contiguous position range and within
// a level no two vertices share an arc, so the per-vertex updates are the
// sequential ones verbatim, run concurrently one level at a time. The cp
// argmax is reduced per thread and merged by (max end, lowest topological
// position on exact ties) — the same rule as the sequential sweep above.
void run_sweeps_parallel(const SweepPlan& pl,
                         const std::vector<int>& level_off,
                         const std::vector<double>& delay_pos,
                         std::vector<double>& at_pos,
                         std::vector<double>& rt_pos, double& critical_path,
                         NodeId& cp_vertex, ThreadArena& arena) {
  const int n = pl.n;
  at_pos.resize(static_cast<std::size_t>(n));
  rt_pos.resize(static_cast<std::size_t>(n));
  const int levels = static_cast<int>(level_off.size()) - 1;

  struct alignas(64) CpLocal {
    double end = -kInf;
    int pos = INT_MAX;
    NodeId v = kInvalidNode;
  };
  std::vector<CpLocal> cp(static_cast<std::size_t>(arena.threads()));

  for (int l = 0; l < levels; ++l) {
    const int base = level_off[static_cast<std::size_t>(l)];
    const int width = level_off[static_cast<std::size_t>(l) + 1] - base;
    arena.parallel_for(width, kSweepGrain, [&](int thread, int begin, int end) {
      CpLocal& local = cp[static_cast<std::size_t>(thread)];
      for (int i = begin; i < end; ++i) {
        const std::size_t pi = static_cast<std::size_t>(base + i);
        double at = 0.0;
        for (int k = pl.fanin_off[pi]; k < pl.fanin_off[pi + 1]; ++k) {
          const std::size_t j = static_cast<std::size_t>(
              pl.fanin_pos[static_cast<std::size_t>(k)]);
          at = std::max(at, at_pos[j] + delay_pos[j]);
        }
        at_pos[pi] = at;
        const double vend = at + delay_pos[pi];
        const int vpos = pl.topo_pos[pi];
        if (vend > local.end || (vend == local.end && vpos < local.pos)) {
          local.end = vend;
          local.pos = vpos;
          local.v = pl.vid[pi];
        }
      }
    });
  }

  CpLocal best;
  for (const CpLocal& local : cp) {
    if (local.v == kInvalidNode) continue;
    if (best.v == kInvalidNode || local.end > best.end ||
        (local.end == best.end && local.pos < best.pos))
      best = local;
  }
  critical_path = best.v == kInvalidNode ? 0.0 : best.end;
  cp_vertex = best.v;

  for (int l = levels - 1; l >= 0; --l) {
    const int base = level_off[static_cast<std::size_t>(l)];
    const int width = level_off[static_cast<std::size_t>(l) + 1] - base;
    arena.parallel_for(width, kSweepGrain, [&](int, int begin, int end) {
      for (int i = begin; i < end; ++i) {
        const std::size_t pi = static_cast<std::size_t>(base + i);
        double rt = kInf;
        if (pl.sink[pi]) rt = critical_path - delay_pos[pi];
        for (int k = pl.fanout_off[pi]; k < pl.fanout_off[pi + 1]; ++k)
          rt = std::min(rt, rt_pos[static_cast<std::size_t>(pl.fanout_pos[
                                 static_cast<std::size_t>(k)])] -
                                delay_pos[pi]);
        rt_pos[pi] = rt;
      }
    });
  }
}

void run_sweeps(const SizingNetwork& net, const std::vector<double>& delay_pos,
                std::vector<double>& at_pos, std::vector<double>& rt_pos,
                double& critical_path, NodeId& cp_vertex, ThreadArena* arena) {
  if (multi_thread(arena))
    run_sweeps_parallel(net.plan(), net.level_offsets(), delay_pos, at_pos,
                        rt_pos, critical_path, cp_vertex, *arena);
  else
    run_sweeps_sequential(net.plan(), delay_pos, at_pos, rt_pos, critical_path,
                          cp_vertex);
}

// Translate the position-space working set into the id-indexed public
// report: linear writes over the four report arrays, gathered reads from
// the position arrays.
void export_report(const SweepPlan& pl, const std::vector<double>& delay_pos,
                   const std::vector<double>& at_pos,
                   const std::vector<double>& rt_pos, TimingReport& r) {
  const std::size_t n = static_cast<std::size_t>(pl.n);
  r.delay.resize(n);
  r.at.resize(n);
  r.rt.resize(n);
  r.slack.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t p = static_cast<std::size_t>(pl.pos_of[v]);
    r.delay[v] = delay_pos[p];
    r.at[v] = at_pos[p];
    r.rt[v] = rt_pos[p];
    r.slack[v] = rt_pos[p] - at_pos[p];
  }
}

// Shared incremental driver; `changed` selects the hinted or scanning path.
const TimingReport& run_sta_incremental(const SizingNetwork& net,
                                        const std::vector<double>& sizes,
                                        TimingScratch& scratch,
                                        const std::vector<NodeId>* changed) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(sizes.size()) == net.num_vertices());
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());
  const SweepPlan& pl = net.plan();
  TimingReport& r = scratch.report;

  if (!scratch.valid || scratch.net_serial != net.serial() ||
      scratch.fast_math != scratch.last_fast_math) {
    // First run on this scratch (or a different network, or a delay-mode
    // flip — exact and fast delays must never mix): full recompute.
    pl.gather(sizes, scratch.sizes_pos);
    full_delay_pos(pl, scratch.sizes_pos, scratch.delay_pos, scratch.arena,
                   scratch.fast_math);
    scratch.is_dirty.assign(n, 0);
    scratch.last_sizes = sizes;
    scratch.valid = true;
    scratch.net_serial = net.serial();
    scratch.last_fast_math = scratch.fast_math;
    ++scratch.full_runs;
    scratch.delays_recomputed += static_cast<std::int64_t>(n);
  } else {
    // Incremental: a vertex's delay depends on its own size and the sizes
    // it loads, so the invalidated set is {changed} ∪ reverse loads of the
    // changed vertices — all found on the flat reverse-load CSR, tracked
    // as sweep positions.
    auto& dirty = scratch.dirty;
    dirty.clear();
    auto mark = [&](int p) {
      const std::size_t i = static_cast<std::size_t>(p);
      if (!scratch.is_dirty[i]) {
        scratch.is_dirty[i] = 1;
        dirty.push_back(p);
      }
    };
    auto mark_changed = [&](NodeId v) {
      const int p = pl.pos_of[static_cast<std::size_t>(v)];
      scratch.sizes_pos[static_cast<std::size_t>(p)] =
          sizes[static_cast<std::size_t>(v)];
      mark(p);
      for (int k = pl.rload_off[static_cast<std::size_t>(p)];
           k < pl.rload_off[static_cast<std::size_t>(p) + 1]; ++k)
        mark(pl.rload_pos[static_cast<std::size_t>(k)]);
    };
    if (changed != nullptr) {
      // Hinted path: trust the caller's change set, touch nothing else.
      for (const NodeId v : *changed) {
        const std::size_t i = static_cast<std::size_t>(v);
        if (sizes[i] == scratch.last_sizes[i]) continue;
        scratch.last_sizes[i] = sizes[i];
        mark_changed(v);
      }
#ifndef NDEBUG
      // A hint that misses a resized vertex silently corrupts every later
      // report; cross-check the whole contract in debug builds.
      for (std::size_t i = 0; i < n; ++i)
        MFT_CHECK_MSG(sizes[i] == scratch.last_sizes[i],
                      "run_sta changed-hint missed resized vertex " << i);
#endif
      ++scratch.hinted_runs;
    } else {
      for (NodeId v = 0; v < net.num_vertices(); ++v) {
        const std::size_t i = static_cast<std::size_t>(v);
        if (sizes[i] == scratch.last_sizes[i]) continue;
        mark_changed(v);
      }
      scratch.last_sizes = sizes;
    }
    auto recompute = [&](int, int begin, int end) {
      if (scratch.fast_math) {
        for (int i = begin; i < end; ++i) {
          const int p = dirty[static_cast<std::size_t>(i)];
          scratch.delay_pos[static_cast<std::size_t>(p)] =
              pl.delay_at_fast(p, scratch.sizes_pos);
          scratch.is_dirty[static_cast<std::size_t>(p)] = 0;
        }
      } else {
        for (int i = begin; i < end; ++i) {
          const int p = dirty[static_cast<std::size_t>(i)];
          scratch.delay_pos[static_cast<std::size_t>(p)] =
              pl.delay_at(p, scratch.sizes_pos);
          scratch.is_dirty[static_cast<std::size_t>(p)] = 0;
        }
      }
    };
    if (multi_thread(scratch.arena))
      scratch.arena->parallel_for(static_cast<int>(dirty.size()), kDelayGrain,
                                  recompute);
    else
      recompute(0, 0, static_cast<int>(dirty.size()));
    ++scratch.incremental_runs;
    scratch.delays_recomputed += static_cast<std::int64_t>(dirty.size());
  }

  run_sweeps(net, scratch.delay_pos, scratch.at_pos, scratch.rt_pos,
             r.critical_path, r.cp_vertex, scratch.arena);
  export_report(pl, scratch.delay_pos, scratch.at_pos, scratch.rt_pos, r);
  return r;
}
}  // namespace

TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(sizes.size()) == net.num_vertices());
  const SweepPlan& pl = net.plan();
  TimingReport r;
  std::vector<double> sizes_pos, delay_pos, at_pos, rt_pos;
  pl.gather(sizes, sizes_pos);
  full_delay_pos(pl, sizes_pos, delay_pos, nullptr, /*fast=*/false);
  run_sweeps_sequential(pl, delay_pos, at_pos, rt_pos, r.critical_path,
                        r.cp_vertex);
  export_report(pl, delay_pos, at_pos, rt_pos, r);
  return r;
}

const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch) {
  return run_sta_incremental(net, sizes, scratch, nullptr);
}

const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch,
                            const std::vector<NodeId>& changed) {
  return run_sta_incremental(net, sizes, scratch, &changed);
}

double TimingReport::edge_slack(const SizingNetwork& net, ArcId a) const {
  const Digraph& g = net.dag();
  const NodeId i = g.tail(a);
  const NodeId j = g.head(a);
  return rt[static_cast<std::size_t>(j)] - at[static_cast<std::size_t>(i)] -
         delay[static_cast<std::size_t>(i)];
}

std::vector<NodeId> TimingReport::critical_vertices(
    const SizingNetwork& net) const {
  const Digraph& g = net.dag();
  // The CP endpoint is tracked during run_sta; fall back to an O(V) scan
  // only for reports not produced by run_sta.
  NodeId cur = cp_vertex;
  if (cur == kInvalidNode) {
    double best = -kInf;
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      const double end = at[static_cast<std::size_t>(v)] +
                         delay[static_cast<std::size_t>(v)];
      if (end > best) {
        best = end;
        cur = v;
      }
    }
  }
  std::vector<NodeId> path;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    // Step to the max-(AT+delay) fanin: that maximum is exactly how AT(cur)
    // was formed in the forward sweep, so the comparison is exact, and
    // taking the argmax (lowest id on ties) makes the walk deterministic.
    NodeId next = kInvalidNode;
    double best = -kInf;
    for (ArcId a : g.in_arcs(cur)) {
      const NodeId j = g.tail(a);
      const double end = at[static_cast<std::size_t>(j)] +
                         delay[static_cast<std::size_t>(j)];
      if (end > best || (end == best && next != kInvalidNode && j < next)) {
        best = end;
        next = j;
      }
    }
    if (next != kInvalidNode &&
        best != at[static_cast<std::size_t>(cur)])
      next = kInvalidNode;  // AT came from the source floor, not a fanin
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool TimingReport::safe(const SizingNetwork& net, double tol) const {
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (slack[static_cast<std::size_t>(v)] < -tol) return false;
  for (ArcId a = 0; a < net.dag().num_arcs(); ++a)
    if (edge_slack(net, a) < -tol) return false;
  return true;
}

}  // namespace mft
