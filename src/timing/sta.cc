#include "timing/sta.h"

#include <algorithm>
#include <limits>

namespace mft {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(sizes.size()) == net.num_vertices());
  const Digraph& g = net.dag();
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());

  TimingReport r;
  r.delay.resize(n);
  r.at.assign(n, 0.0);
  r.rt.assign(n, kInf);
  r.slack.resize(n);

  for (NodeId v = 0; v < net.num_vertices(); ++v)
    r.delay[static_cast<std::size_t>(v)] = net.delay(v, sizes);

  // Forward: AT(v) = max over fanin j of AT(j) + delay(j); 0 at sources.
  for (NodeId v : net.topological_order()) {
    double at = 0.0;
    for (ArcId a : g.in_arcs(v)) {
      const NodeId j = g.tail(a);
      at = std::max(at, r.at[static_cast<std::size_t>(j)] +
                            r.delay[static_cast<std::size_t>(j)]);
    }
    r.at[static_cast<std::size_t>(v)] = at;
    r.critical_path =
        std::max(r.critical_path,
                 at + r.delay[static_cast<std::size_t>(v)]);
  }

  // Backward: RT(v) = CP − delay(v) at POs, min over fanouts elsewhere.
  const auto& topo = net.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double rt = kInf;
    if (net.vertex(v).is_po || g.out_degree(v) == 0)
      rt = r.critical_path - r.delay[static_cast<std::size_t>(v)];
    for (ArcId a : g.out_arcs(v)) {
      const NodeId j = g.head(a);
      rt = std::min(rt, r.rt[static_cast<std::size_t>(j)] -
                            r.delay[static_cast<std::size_t>(v)]);
    }
    r.rt[static_cast<std::size_t>(v)] = rt;
    r.slack[static_cast<std::size_t>(v)] =
        rt - r.at[static_cast<std::size_t>(v)];
  }
  return r;
}

double TimingReport::edge_slack(const SizingNetwork& net, ArcId a) const {
  const Digraph& g = net.dag();
  const NodeId i = g.tail(a);
  const NodeId j = g.head(a);
  return rt[static_cast<std::size_t>(j)] - at[static_cast<std::size_t>(i)] -
         delay[static_cast<std::size_t>(i)];
}

std::vector<NodeId> TimingReport::critical_vertices(
    const SizingNetwork& net) const {
  // Walk back from the vertex realizing CP along tight arcs.
  const Digraph& g = net.dag();
  NodeId cur = kInvalidNode;
  double best = -kInf;
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    const double end = at[static_cast<std::size_t>(v)] +
                       delay[static_cast<std::size_t>(v)];
    if (end > best) {
      best = end;
      cur = v;
    }
  }
  std::vector<NodeId> path;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    NodeId next = kInvalidNode;
    for (ArcId a : g.in_arcs(cur)) {
      const NodeId j = g.tail(a);
      if (std::abs(at[static_cast<std::size_t>(j)] +
                   delay[static_cast<std::size_t>(j)] -
                   at[static_cast<std::size_t>(cur)]) <=
          1e-9 * (1.0 + std::abs(at[static_cast<std::size_t>(cur)]))) {
        next = j;
        break;
      }
    }
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool TimingReport::safe(const SizingNetwork& net, double tol) const {
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (slack[static_cast<std::size_t>(v)] < -tol) return false;
  for (ArcId a = 0; a < net.dag().num_arcs(); ++a)
    if (edge_slack(net, a) < -tol) return false;
  return true;
}

}  // namespace mft
