#include "timing/sta.h"

#include <algorithm>
#include <climits>
#include <limits>

#include "util/parallel.h"

namespace mft {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum vertices per arena chunk. Below these the dispatch overhead beats
// the work and parallel_for runs the body inline; tuning them only moves
// where parallelism kicks in, never the results.
constexpr int kDelayGrain = 96;  ///< delay recompute (load-term dot products)
constexpr int kSweepGrain = 64;  ///< AT/RT level sweeps (arc min/max folds)

bool multi_thread(const ThreadArena* arena) {
  return arena != nullptr && arena->threads() > 1;
}

// Sizes the report and recomputes every per-vertex delay. Shared by the
// two-arg run_sta and the scratch overload's first run so the full and
// incremental paths cannot drift apart.
void full_delay_init(const SizingNetwork& net, const std::vector<double>& sizes,
                     TimingReport& r, ThreadArena* arena) {
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());
  r.delay.resize(n);
  r.at.assign(n, 0.0);
  r.rt.assign(n, kInf);
  r.slack.resize(n);
  if (multi_thread(arena)) {
    arena->parallel_for(net.num_vertices(), kDelayGrain,
                        [&](int, int begin, int end) {
                          for (NodeId v = begin; v < end; ++v)
                            r.delay[static_cast<std::size_t>(v)] =
                                net.delay(v, sizes);
                        });
  } else {
    for (NodeId v = 0; v < net.num_vertices(); ++v)
      r.delay[static_cast<std::size_t>(v)] = net.delay(v, sizes);
  }
}

// Forward/backward sweeps over already-computed per-vertex delays. Shared
// by the full and incremental paths so both produce identical reports.
void run_sweeps_sequential(const SizingNetwork& net, TimingReport& r) {
  const Digraph& g = net.dag();

  // Forward: AT(v) = max over fanin j of AT(j) + delay(j); 0 at sources.
  r.critical_path = 0.0;
  r.cp_vertex = kInvalidNode;
  for (NodeId v : net.topological_order()) {
    double at = 0.0;
    for (ArcId a : g.in_arcs(v)) {
      const NodeId j = g.tail(a);
      at = std::max(at, r.at[static_cast<std::size_t>(j)] +
                            r.delay[static_cast<std::size_t>(j)]);
    }
    r.at[static_cast<std::size_t>(v)] = at;
    const double end = at + r.delay[static_cast<std::size_t>(v)];
    if (r.cp_vertex == kInvalidNode || end > r.critical_path) {
      r.critical_path = end;
      r.cp_vertex = v;
    }
  }

  // Backward: RT(v) = CP − delay(v) at POs, min over fanouts elsewhere.
  const auto& topo = net.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double rt = kInf;
    if (net.vertex(v).is_po || g.out_degree(v) == 0)
      rt = r.critical_path - r.delay[static_cast<std::size_t>(v)];
    for (ArcId a : g.out_arcs(v)) {
      const NodeId j = g.head(a);
      rt = std::min(rt, r.rt[static_cast<std::size_t>(j)] -
                            r.delay[static_cast<std::size_t>(v)]);
    }
    r.rt[static_cast<std::size_t>(v)] = rt;
    r.slack[static_cast<std::size_t>(v)] =
        rt - r.at[static_cast<std::size_t>(v)];
  }
}

// Level-parallel sweeps: within a level no two vertices share an arc, so
// the per-vertex updates are the sequential ones verbatim, run concurrently
// one level at a time. Bit-identical to run_sweeps_sequential: AT/RT read
// only earlier/later levels, and the cp argmax is reduced per thread and
// merged by (max end, lowest topological position on exact ties) — the
// same winner as the sequential first-attaining-the-max rule.
void run_sweeps_parallel(const SizingNetwork& net, TimingReport& r,
                         ThreadArena& arena) {
  const Digraph& g = net.dag();
  const auto& order = net.level_order();
  const auto& off = net.level_offsets();
  const auto& pos = net.topo_position();
  const int levels = net.num_levels();

  struct alignas(64) CpLocal {
    double end = -kInf;
    int pos = INT_MAX;
    NodeId v = kInvalidNode;
  };
  std::vector<CpLocal> cp(static_cast<std::size_t>(arena.threads()));

  for (int l = 0; l < levels; ++l) {
    const int base = off[static_cast<std::size_t>(l)];
    const int width = off[static_cast<std::size_t>(l) + 1] - base;
    arena.parallel_for(width, kSweepGrain, [&](int thread, int begin, int end) {
      CpLocal& local = cp[static_cast<std::size_t>(thread)];
      for (int i = begin; i < end; ++i) {
        const NodeId v = order[static_cast<std::size_t>(base + i)];
        double at = 0.0;
        for (ArcId a : g.in_arcs(v)) {
          const NodeId j = g.tail(a);
          at = std::max(at, r.at[static_cast<std::size_t>(j)] +
                                r.delay[static_cast<std::size_t>(j)]);
        }
        r.at[static_cast<std::size_t>(v)] = at;
        const double vend = at + r.delay[static_cast<std::size_t>(v)];
        const int vpos = pos[static_cast<std::size_t>(v)];
        if (vend > local.end || (vend == local.end && vpos < local.pos)) {
          local.end = vend;
          local.pos = vpos;
          local.v = v;
        }
      }
    });
  }

  CpLocal best;
  for (const CpLocal& local : cp) {
    if (local.v == kInvalidNode) continue;
    if (best.v == kInvalidNode || local.end > best.end ||
        (local.end == best.end && local.pos < best.pos))
      best = local;
  }
  r.critical_path = best.v == kInvalidNode ? 0.0 : best.end;
  r.cp_vertex = best.v;

  for (int l = levels - 1; l >= 0; --l) {
    const int base = off[static_cast<std::size_t>(l)];
    const int width = off[static_cast<std::size_t>(l) + 1] - base;
    arena.parallel_for(width, kSweepGrain, [&](int, int begin, int end) {
      for (int i = begin; i < end; ++i) {
        const NodeId v = order[static_cast<std::size_t>(base + i)];
        double rt = kInf;
        if (net.vertex(v).is_po || g.out_degree(v) == 0)
          rt = r.critical_path - r.delay[static_cast<std::size_t>(v)];
        for (ArcId a : g.out_arcs(v)) {
          const NodeId j = g.head(a);
          rt = std::min(rt, r.rt[static_cast<std::size_t>(j)] -
                                r.delay[static_cast<std::size_t>(v)]);
        }
        r.rt[static_cast<std::size_t>(v)] = rt;
        r.slack[static_cast<std::size_t>(v)] =
            rt - r.at[static_cast<std::size_t>(v)];
      }
    });
  }
}

void run_sweeps(const SizingNetwork& net, TimingReport& r, ThreadArena* arena) {
  if (multi_thread(arena))
    run_sweeps_parallel(net, r, *arena);
  else
    run_sweeps_sequential(net, r);
}

// Shared incremental driver; `changed` selects the hinted or scanning path.
const TimingReport& run_sta_incremental(const SizingNetwork& net,
                                        const std::vector<double>& sizes,
                                        TimingScratch& scratch,
                                        const std::vector<NodeId>* changed) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(sizes.size()) == net.num_vertices());
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());
  TimingReport& r = scratch.report;

  if (!scratch.valid || scratch.net_serial != net.serial()) {
    // First run on this scratch (or a different network): full recompute.
    full_delay_init(net, sizes, r, scratch.arena);
    scratch.is_dirty.assign(n, 0);
    scratch.last_sizes = sizes;
    scratch.valid = true;
    scratch.net_serial = net.serial();
    ++scratch.full_runs;
    scratch.delays_recomputed += static_cast<std::int64_t>(n);
  } else {
    // Incremental: a vertex's delay depends on its own size and the sizes
    // it loads, so the invalidated set is {changed} ∪ reverse_loads of the
    // changed vertices.
    auto& dirty = scratch.dirty;
    dirty.clear();
    const auto& rev = net.reverse_loads();
    auto mark = [&](NodeId v) {
      const std::size_t i = static_cast<std::size_t>(v);
      if (!scratch.is_dirty[i]) {
        scratch.is_dirty[i] = 1;
        dirty.push_back(v);
      }
    };
    if (changed != nullptr) {
      // Hinted path: trust the caller's change set, touch nothing else.
      for (const NodeId v : *changed) {
        const std::size_t i = static_cast<std::size_t>(v);
        if (sizes[i] == scratch.last_sizes[i]) continue;
        scratch.last_sizes[i] = sizes[i];
        mark(v);
        for (const LoadTerm& t : rev[i]) mark(t.vertex);
      }
#ifndef NDEBUG
      // A hint that misses a resized vertex silently corrupts every later
      // report; cross-check the whole contract in debug builds.
      for (std::size_t i = 0; i < n; ++i)
        MFT_CHECK_MSG(sizes[i] == scratch.last_sizes[i],
                      "run_sta changed-hint missed resized vertex " << i);
#endif
      ++scratch.hinted_runs;
    } else {
      for (NodeId v = 0; v < net.num_vertices(); ++v) {
        const std::size_t i = static_cast<std::size_t>(v);
        if (sizes[i] == scratch.last_sizes[i]) continue;
        mark(v);
        for (const LoadTerm& t : rev[i]) mark(t.vertex);
      }
      scratch.last_sizes = sizes;
    }
    if (multi_thread(scratch.arena)) {
      scratch.arena->parallel_for(
          static_cast<int>(dirty.size()), kDelayGrain,
          [&](int, int begin, int end) {
            for (int i = begin; i < end; ++i) {
              const NodeId v = dirty[static_cast<std::size_t>(i)];
              r.delay[static_cast<std::size_t>(v)] = net.delay(v, sizes);
              scratch.is_dirty[static_cast<std::size_t>(v)] = 0;
            }
          });
    } else {
      for (const NodeId v : dirty) {
        r.delay[static_cast<std::size_t>(v)] = net.delay(v, sizes);
        scratch.is_dirty[static_cast<std::size_t>(v)] = 0;
      }
    }
    ++scratch.incremental_runs;
    scratch.delays_recomputed += static_cast<std::int64_t>(dirty.size());
  }

  run_sweeps(net, r, scratch.arena);
  return r;
}
}  // namespace

TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(sizes.size()) == net.num_vertices());
  TimingReport r;
  full_delay_init(net, sizes, r, nullptr);
  run_sweeps_sequential(net, r);
  return r;
}

const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch) {
  return run_sta_incremental(net, sizes, scratch, nullptr);
}

const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch,
                            const std::vector<NodeId>& changed) {
  return run_sta_incremental(net, sizes, scratch, &changed);
}

double TimingReport::edge_slack(const SizingNetwork& net, ArcId a) const {
  const Digraph& g = net.dag();
  const NodeId i = g.tail(a);
  const NodeId j = g.head(a);
  return rt[static_cast<std::size_t>(j)] - at[static_cast<std::size_t>(i)] -
         delay[static_cast<std::size_t>(i)];
}

std::vector<NodeId> TimingReport::critical_vertices(
    const SizingNetwork& net) const {
  const Digraph& g = net.dag();
  // The CP endpoint is tracked during run_sta; fall back to an O(V) scan
  // only for reports not produced by run_sta.
  NodeId cur = cp_vertex;
  if (cur == kInvalidNode) {
    double best = -kInf;
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      const double end = at[static_cast<std::size_t>(v)] +
                         delay[static_cast<std::size_t>(v)];
      if (end > best) {
        best = end;
        cur = v;
      }
    }
  }
  std::vector<NodeId> path;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    // Step to the max-(AT+delay) fanin: that maximum is exactly how AT(cur)
    // was formed in the forward sweep, so the comparison is exact, and
    // taking the argmax (lowest id on ties) makes the walk deterministic.
    NodeId next = kInvalidNode;
    double best = -kInf;
    for (ArcId a : g.in_arcs(cur)) {
      const NodeId j = g.tail(a);
      const double end = at[static_cast<std::size_t>(j)] +
                         delay[static_cast<std::size_t>(j)];
      if (end > best || (end == best && next != kInvalidNode && j < next)) {
        best = end;
        next = j;
      }
    }
    if (next != kInvalidNode &&
        best != at[static_cast<std::size_t>(cur)])
      next = kInvalidNode;  // AT came from the source floor, not a fanin
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool TimingReport::safe(const SizingNetwork& net, double tol) const {
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (slack[static_cast<std::size_t>(v)] < -tol) return false;
  for (ArcId a = 0; a < net.dag().num_arcs(); ++a)
    if (edge_slack(net, a) < -tol) return false;
  return true;
}

}  // namespace mft
