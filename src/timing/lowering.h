// Lowering from the netlist IR to the sizing IR at two granularities:
//
//  - lower_gate_level: one vertex per logic gate, modeled as an equivalent
//    inverter with logical-effort scaling (the relaxed "gate sizing"
//    problem of §1, used for the paper's §3 experiments). Optionally adds
//    one sizeable wire vertex per driven net (§2.1 wire-sizing extension).
//
//  - lower_transistor_level: one vertex per transistor, built from each
//    gate's pullup/pulldown series/parallel planes exactly as §2.1/Fig. 1:
//    per-plane DAG stages from the output node toward the supply rail,
//    Elmore load coefficients from the stack's internal nodes, and
//    cross-gate arcs NMOS-leaves→PMOS-roots / PMOS-leaves→NMOS-roots
//    (Fig. 2). Requires a primitive-only netlist
//    (tech_map_to_primitives first).
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "timing/sizing_network.h"

namespace mft {

/// A sizing network plus the mapping back to netlist gates.
struct LoweredCircuit {
  explicit LoweredCircuit(const Tech& tech) : net(tech) {}

  SizingNetwork net;
  /// gate_vertices[gate] = sizing vertices of that gate (the source vertex
  /// for PIs; 1 vertex per gate at gate level; one per transistor at
  /// transistor level).
  std::vector<std::vector<NodeId>> gate_vertices;
  /// wire_vertices[gate] = wire vertex on the gate's output net, or
  /// kInvalidNode (only populated with size_wires).
  std::vector<NodeId> wire_vertices;
};

struct GateLoweringOptions {
  bool size_wires = false;
  /// Wire resistance per unit width (only with size_wires).
  double r_wire = 0.5;
};

LoweredCircuit lower_gate_level(const Netlist& nl, const Tech& tech,
                                const GateLoweringOptions& opt = {});

LoweredCircuit lower_transistor_level(const Netlist& nl, const Tech& tech);

}  // namespace mft
