#include <map>

#include "timing/lowering.h"

namespace mft {

LoweredCircuit lower_gate_level(const Netlist& nl, const Tech& tech,
                                const GateLoweringOptions& opt) {
  LoweredCircuit out(tech);
  SizingNetwork& net = out.net;
  out.gate_vertices.resize(static_cast<std::size_t>(nl.num_gates()));
  out.wire_vertices.assign(static_cast<std::size_t>(nl.num_gates()),
                           kInvalidNode);

  // Pass 1: one vertex per gate (sources for PIs). A gate carries the PO
  // load itself unless a sizeable wire vertex will shield it.
  std::vector<NodeId> vtx(static_cast<std::size_t>(nl.num_gates()));
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const bool has_wire = opt.size_wires && !nl.fanouts(g).empty();
    SizingVertex v;
    v.origin_gate = g;
    if (gate.kind == GateKind::kInput) {
      v.kind = VertexKind::kSource;
    } else {
      v.kind = VertexKind::kGate;
      const double ge =
          logical_effort(gate.kind, static_cast<int>(gate.fanins.size()));
      const double pe =
          parasitic_effort(gate.kind, static_cast<int>(gate.fanins.size()));
      v.a_self = tech.r_unit * ge * tech.c_par * pe;
      if (nl.is_output(g) && !has_wire) {
        v.is_po = true;
        v.b = tech.r_unit * ge * tech.c_po_load;
      }
    }
    vtx[static_cast<std::size_t>(g)] = net.add_vertex(std::move(v), gate.name);
    out.gate_vertices[static_cast<std::size_t>(g)] = {
        vtx[static_cast<std::size_t>(g)]};
  }

  // Pass 1b: wire vertex per driven net.
  if (opt.size_wires) {
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      if (nl.fanouts(g).empty()) continue;
      SizingVertex w;
      w.kind = VertexKind::kWire;
      w.origin_gate = g;
      w.is_po = nl.is_output(g);
      w.b = opt.r_wire * tech.c_wire;  // residual fixed cap
      if (w.is_po) w.b += opt.r_wire * tech.c_po_load;
      out.wire_vertices[static_cast<std::size_t>(g)] =
          net.add_vertex(std::move(w), nl.gate(g).name + "$wire");
    }
  }

  // Pass 2: timing arcs and load coefficients.
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const NodeId vg = vtx[static_cast<std::size_t>(g)];
    const NodeId wg = out.wire_vertices[static_cast<std::size_t>(g)];

    // Pin multiplicity of every fanout connection.
    std::map<GateId, int> pin_count;
    for (GateId h : nl.fanouts(g)) {
      int pins = 0;
      for (GateId f : nl.gate(h).fanins)
        if (f == g) ++pins;
      pin_count[h] = pins;
    }

    if (gate.kind != GateKind::kInput) {
      const double ge =
          logical_effort(gate.kind, static_cast<int>(gate.fanins.size()));
      if (wg == kInvalidNode) {
        // Direct pin + fixed-wire loading.
        for (const auto& [h, pins] : pin_count) {
          const Gate& sink = nl.gate(h);
          const double gh = logical_effort(
              sink.kind, static_cast<int>(sink.fanins.size()));
          net.add_load(vg, vtx[static_cast<std::size_t>(h)],
                       tech.r_unit * ge * tech.c_in * gh * pins);
          net.add_b(vg, tech.r_unit * ge * tech.c_wire * pins);
        }
      } else {
        // Sizeable wire shields the pins: driver sees c_wire·x_w only.
        net.add_load(vg, wg, tech.r_unit * ge * tech.c_wire);
      }
    }

    // Wire vertex: r_wire/x_w over downstream pin capacitances.
    if (wg != kInvalidNode) {
      for (const auto& [h, pins] : pin_count) {
        const Gate& sink = nl.gate(h);
        const double gh = logical_effort(
            sink.kind, static_cast<int>(sink.fanins.size()));
        net.add_load(wg, vtx[static_cast<std::size_t>(h)],
                     opt.r_wire * tech.c_in * gh * pins);
      }
    }

    // Timing arcs: fanin (or its wire) -> gate; gate -> its wire.
    for (GateId f : gate.fanins) {
      const NodeId wf = out.wire_vertices[static_cast<std::size_t>(f)];
      net.add_arc(wf != kInvalidNode ? wf : vtx[static_cast<std::size_t>(f)],
                  vg);
    }
    if (wg != kInvalidNode) net.add_arc(vg, wg);
  }

  net.freeze();
  return out;
}

}  // namespace mft
