#include "timing/delay_balance.h"

#include <cmath>
#include <sstream>

namespace mft {

DelayBalance compute_delay_balance(const SizingNetwork& net,
                                   const TimingReport& timing,
                                   BalanceMode mode) {
  const Digraph& g = net.dag();
  DelayBalance bal;
  bal.critical_path = timing.critical_path;
  bal.schedule = mode == BalanceMode::kAsap ? timing.at : timing.rt;
  bal.arc_fsdu.resize(static_cast<std::size_t>(g.num_arcs()));
  bal.po_fsdu.assign(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId i = g.tail(a);
    const NodeId j = g.head(a);
    bal.arc_fsdu[static_cast<std::size_t>(a)] =
        bal.schedule[static_cast<std::size_t>(j)] -
        bal.schedule[static_cast<std::size_t>(i)] -
        timing.delay[static_cast<std::size_t>(i)];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (net.vertex(v).is_po || g.out_degree(v) == 0) {
      bal.po_fsdu[static_cast<std::size_t>(v)] =
          bal.critical_path - bal.schedule[static_cast<std::size_t>(v)] -
          timing.delay[static_cast<std::size_t>(v)];
    }
  }
  return bal;
}

bool check_balanced(const SizingNetwork& net, const TimingReport& timing,
                    const DelayBalance& bal, std::string* why, double tol) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  const Digraph& g = net.dag();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const double f = bal.arc_fsdu[static_cast<std::size_t>(a)];
    if (f < -tol) {
      std::ostringstream os;
      os << "negative FSDU " << f << " on arc " << a;
      return fail(os.str());
    }
    const NodeId i = g.tail(a);
    const NodeId j = g.head(a);
    const double lhs = bal.schedule[static_cast<std::size_t>(i)] +
                       timing.delay[static_cast<std::size_t>(i)] + f;
    if (std::abs(lhs - bal.schedule[static_cast<std::size_t>(j)]) > tol)
      return fail("schedule inconsistent with FSDU on arc " +
                  std::to_string(a));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (net.is_source(v) &&
        bal.schedule[static_cast<std::size_t>(v)] < -tol)
      return fail("source scheduled before time 0");
    if (net.vertex(v).is_po || g.out_degree(v) == 0) {
      const double f = bal.po_fsdu[static_cast<std::size_t>(v)];
      if (f < -tol) return fail("negative PO FSDU at vertex " + std::to_string(v));
      const double end = bal.schedule[static_cast<std::size_t>(v)] +
                         timing.delay[static_cast<std::size_t>(v)] + f;
      if (std::abs(end - bal.critical_path) > tol)
        return fail("PO vertex " + std::to_string(v) +
                    " does not meet CP after balancing");
    }
  }
  return true;
}

}  // namespace mft
