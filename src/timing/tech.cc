#include "timing/tech.h"

#include "util/check.h"

namespace mft {

double logical_effort(GateKind kind, int fanin) {
  const double k = fanin;
  switch (kind) {
    case GateKind::kInput:
      return 0.0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1.0;
    case GateKind::kNand:
      return (k + 2.0) / 3.0;
    case GateKind::kNor:
      return (2.0 * k + 1.0) / 3.0;
    case GateKind::kAnd:  // NAND + INV lumped
      return (k + 2.0) / 3.0 + 0.3;
    case GateKind::kOr:  // NOR + INV lumped
      return (2.0 * k + 1.0) / 3.0 + 0.3;
    case GateKind::kXor:
    case GateKind::kXnor:
      return 4.0 * std::max(1.0, k - 1.0);
    case GateKind::kAoi21:
      return 2.0;
    case GateKind::kOai21:
      return 5.0 / 3.0;
  }
  MFT_CHECK(false);
  return 1.0;
}

double parasitic_effort(GateKind kind, int fanin) {
  const double k = fanin;
  switch (kind) {
    case GateKind::kInput:
      return 0.0;
    case GateKind::kBuf:
      return 2.0;
    case GateKind::kNot:
      return 1.0;
    case GateKind::kNand:
    case GateKind::kNor:
      return k;
    case GateKind::kAnd:
    case GateKind::kOr:
      return k + 1.0;
    case GateKind::kXor:
    case GateKind::kXnor:
      return 4.0 * std::max(1.0, k - 1.0);
    case GateKind::kAoi21:
    case GateKind::kOai21:
      return 3.0;
  }
  MFT_CHECK(false);
  return 1.0;
}

}  // namespace mft
