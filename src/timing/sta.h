// Static timing analysis over a SizingNetwork — the attributes of paper
// eq. (8): arrival time AT, required time RT, slack, edge slack, and the
// critical path CP(G).
#pragma once

#include <vector>

#include "timing/sizing_network.h"

namespace mft {

struct TimingReport {
  std::vector<double> delay;   ///< per-vertex delay under the given sizes
  std::vector<double> at;      ///< arrival time at the vertex *input*
  std::vector<double> rt;      ///< required time
  std::vector<double> slack;   ///< rt - at
  double critical_path = 0.0;  ///< CP(G) = max_v (at + delay)

  /// Edge slack esl(e_ij) = RT(j) − AT(i) − delay(i)  (eq. (8)).
  double edge_slack(const SizingNetwork& net, ArcId a) const;

  /// Vertices on (a) critical path, source→sink order.
  std::vector<NodeId> critical_vertices(const SizingNetwork& net) const;

  /// "Safe" per the paper: all vertex slacks and edge slacks >= -tol.
  bool safe(const SizingNetwork& net, double tol = 1e-9) const;
};

/// Full forward/backward sweep. `sizes` indexed by vertex id.
TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes);

}  // namespace mft
