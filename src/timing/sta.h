// Static timing analysis over a SizingNetwork — the attributes of paper
// eq. (8): arrival time AT, required time RT, slack, edge slack, and the
// critical path CP(G).
//
// Two entry points:
//  - run_sta(net, sizes): full recompute, allocates a fresh report.
//  - run_sta(net, sizes, scratch): incremental. The scratch remembers the
//    sizes of the previous call and only recomputes net.delay(v, ...) for
//    vertices whose delay can actually have changed (the resized vertices
//    plus everything loaded by them, via reverse_loads). The AT/RT sweeps
//    are always full — they are cheap O(V+E) array passes — but reuse the
//    scratch's allocations. Both paths produce bit-identical reports; the
//    tier-1 suite asserts that equivalence on randomized size updates.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/sizing_network.h"

namespace mft {

struct TimingReport {
  std::vector<double> delay;   ///< per-vertex delay under the given sizes
  std::vector<double> at;      ///< arrival time at the vertex *input*
  std::vector<double> rt;      ///< required time
  std::vector<double> slack;   ///< rt - at
  double critical_path = 0.0;  ///< CP(G) = max_v (at + delay)
  /// Endpoint realizing CP(G), tracked during the forward sweep (first
  /// vertex in topological order attaining the max — deterministic).
  NodeId cp_vertex = kInvalidNode;

  /// Edge slack esl(e_ij) = RT(j) − AT(i) − delay(i)  (eq. (8)).
  double edge_slack(const SizingNetwork& net, ArcId a) const;

  /// Vertices on the critical path, source→sink order. Deterministic: ends
  /// at cp_vertex and walks back through the max-(AT+delay) fanin at every
  /// step (ties broken by lowest vertex id).
  std::vector<NodeId> critical_vertices(const SizingNetwork& net) const;

  /// "Safe" per the paper: all vertex slacks and edge slacks >= -tol.
  bool safe(const SizingNetwork& net, double tol = 1e-9) const;
};

/// Reusable state for incremental STA. Owned by callers that re-run timing
/// many times on one network (W-phase/backoff loop, D-phase workspace).
struct TimingScratch {
  TimingReport report;             ///< result storage, reused across calls
  std::vector<double> last_sizes;  ///< sizes of the previous run
  std::vector<NodeId> dirty;       ///< scratch: vertices to re-delay
  std::vector<char> is_dirty;      ///< scratch: dedup mask for `dirty`
  bool valid = false;              ///< false until the first (full) run
  std::uint64_t net_serial = 0;    ///< SizingNetwork::serial() of the run

  // Instrumentation for tests and benches.
  std::int64_t full_runs = 0;
  std::int64_t incremental_runs = 0;
  std::int64_t delays_recomputed = 0;

  /// Zero the instrumentation counters without touching the cached timing
  /// state (the next run stays incremental). SizingContext calls this at
  /// creation and between batch jobs so per-job stats start from zero.
  void reset_instrumentation() {
    full_runs = 0;
    incremental_runs = 0;
    delays_recomputed = 0;
  }
};

/// Full forward/backward sweep. `sizes` indexed by vertex id.
TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes);

/// Incremental sweep: recomputes only the delays invalidated since the
/// previous call on this scratch (full recompute on the first call).
/// Returns scratch.report; the reference stays valid until the next call.
const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch);

}  // namespace mft
