// Static timing analysis over a SizingNetwork — the attributes of paper
// eq. (8): arrival time AT, required time RT, slack, edge slack, and the
// critical path CP(G).
//
// Entry points:
//  - run_sta(net, sizes): full recompute, allocates a fresh report.
//  - run_sta(net, sizes, scratch): incremental. The scratch remembers the
//    sizes of the previous call and only recomputes the delay for
//    vertices whose delay can actually have changed (the resized vertices
//    plus everything loaded by them, via the reverse-load CSR), found by an
//    O(n) scan against the remembered sizes.
//  - run_sta(net, sizes, scratch, changed): same, but the caller names the
//    resized vertices up front and the O(n) scan is skipped — the right
//    form for callers that know their own update (TILOS bumps one vertex
//    per iteration; the D-phase times the last accepted W-phase move).
//    `changed` must be a superset of the truly-resized vertices (extra or
//    duplicate entries cost nothing); an incomplete hint is corruption and
//    is caught by a full cross-check in debug builds.
// All paths produce bit-identical reports; the tier-1 suite asserts the
// equivalences on randomized size updates.
//
// Layout: the kernels never walk SizingVertex records. All hot state lives
// in sweep-position order (SizingNetwork::plan()): the delay recompute and
// the AT/RT sweeps stream the plan's SoA/CSR arrays level-contiguously,
// and one final pass exports the id-indexed TimingReport. Values are
// bit-identical to the historical id-order walks (term order per vertex is
// preserved; max/min folds are exact under reordering).
//
// Parallelism: when scratch.arena points at a multi-thread ThreadArena,
// the delay recompute runs partitioned over the dirty set and the AT/RT
// sweeps run level-parallel over the same position arrays — still
// bit-identical to the sequential sweeps (per-vertex arithmetic is
// unchanged; the cp argmax is merged max-end-first, lowest-topological-
// position-on-ties, exactly the sequential rule).
//
// Fast math: scratch.fast_math opts into FP-reassociated load folds
// (SweepPlan::delay_at_fast) for the delay recompute. Off by default;
// results then differ from the exact mode only by reassociation rounding
// in each vertex's load sum (max/min sweep folds stay exact). Flipping the
// flag forces a full recompute so exact and fast delays never mix in one
// report. The plain run_sta(net, sizes) overload is always exact.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/sizing_network.h"

namespace mft {

class ThreadArena;

struct TimingReport {
  std::vector<double> delay;   ///< per-vertex delay under the given sizes
  std::vector<double> at;      ///< arrival time at the vertex *input*
  std::vector<double> rt;      ///< required time
  std::vector<double> slack;   ///< rt - at
  double critical_path = 0.0;  ///< CP(G) = max_v (at + delay)
  /// Endpoint realizing CP(G), tracked during the forward sweep (first
  /// vertex in topological order attaining the max — deterministic).
  NodeId cp_vertex = kInvalidNode;

  /// Edge slack esl(e_ij) = RT(j) − AT(i) − delay(i)  (eq. (8)).
  double edge_slack(const SizingNetwork& net, ArcId a) const;

  /// Vertices on the critical path, source→sink order. Deterministic: ends
  /// at cp_vertex and walks back through the max-(AT+delay) fanin at every
  /// step (ties broken by lowest vertex id).
  std::vector<NodeId> critical_vertices(const SizingNetwork& net) const;

  /// "Safe" per the paper: all vertex slacks and edge slacks >= -tol.
  bool safe(const SizingNetwork& net, double tol = 1e-9) const;
};

/// Reusable state for incremental STA. Owned by callers that re-run timing
/// many times on one network (W-phase/backoff loop, D-phase workspace).
struct TimingScratch {
  TimingReport report;             ///< result storage, reused across calls
  std::vector<double> last_sizes;  ///< sizes of the previous run (by id)
  /// Persistent sweep-position-order working set (see SizingNetwork::plan):
  /// the kernels read and write only these; `report` is exported from them
  /// at the end of each run.
  std::vector<double> sizes_pos;
  std::vector<double> delay_pos;
  std::vector<double> at_pos;
  std::vector<double> rt_pos;
  std::vector<int> dirty;          ///< scratch: positions to re-delay
  std::vector<char> is_dirty;      ///< scratch: dedup mask for `dirty`
  bool valid = false;              ///< false until the first (full) run
  std::uint64_t net_serial = 0;    ///< SizingNetwork::serial() of the run
  /// Inner-loop parallelism: when set (and multi-thread), the delay
  /// recompute and the AT/RT sweeps run on the arena. Not owned; the owner
  /// (engine worker, bench) must keep it alive across runs. Results are
  /// bit-identical at any thread count.
  ThreadArena* arena = nullptr;
  /// Opt-in FP-reassociated delay folds (see the header comment). Owned by
  /// SizingContext::set_fast_math in the engine; never set by default.
  bool fast_math = false;
  bool last_fast_math = false;     ///< mode the cached delays were built in

  // Instrumentation for tests and benches.
  std::int64_t full_runs = 0;
  std::int64_t incremental_runs = 0;
  /// Subset of incremental_runs that used a caller-provided changed hint
  /// (no O(n) size scan).
  std::int64_t hinted_runs = 0;
  std::int64_t delays_recomputed = 0;

  /// Zero the instrumentation counters without touching the cached timing
  /// state (the next run stays incremental). SizingContext calls this at
  /// creation and between batch jobs so per-job stats start from zero.
  void reset_instrumentation() {
    full_runs = 0;
    incremental_runs = 0;
    hinted_runs = 0;
    delays_recomputed = 0;
  }
};

/// Full forward/backward sweep. `sizes` indexed by vertex id. Always exact
/// (no fast-math variant): this is the reference every other path is
/// compared against.
TimingReport run_sta(const SizingNetwork& net, const std::vector<double>& sizes);

/// Incremental sweep: recomputes only the delays invalidated since the
/// previous call on this scratch (full recompute on the first call). The
/// invalidated set is found by scanning `sizes` against the previous run.
/// Returns scratch.report; the reference stays valid until the next call.
const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch);

/// Incremental sweep with a caller-provided change hint: `changed` must
/// contain every vertex whose size differs from the previous call on this
/// scratch (supersets and duplicates are fine — entries whose size is
/// unchanged are skipped). Skips the O(n) size-diff scan entirely.
const TimingReport& run_sta(const SizingNetwork& net,
                            const std::vector<double>& sizes,
                            TimingScratch& scratch,
                            const std::vector<NodeId>& changed);

}  // namespace mft
