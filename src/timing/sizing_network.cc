#include "timing/sizing_network.h"

#include <algorithm>
#include <atomic>

namespace mft {

namespace {
// Process-wide serial mint shared by freeze(), clone() and eco_add_b():
// anything that changes what a serial-keyed workspace may assume gets a
// number never handed out before.
std::uint64_t mint_serial() {
  static std::atomic<std::uint64_t> next_serial{1};
  return next_serial.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

NodeId SizingNetwork::add_vertex(SizingVertex v, std::string name) {
  MFT_CHECK_MSG(topo_.empty(), "network is frozen");
  MFT_CHECK(v.a_self >= 0.0 && v.b >= 0.0);
  const NodeId id = dag_.add_node();
  if (v.kind != VertexKind::kSource) ++num_sizeable_;
  verts_.push_back(std::move(v));
  names_.push_back(std::move(name));
  return id;
}

void SizingNetwork::add_load(NodeId on, NodeId of, double coeff) {
  MFT_CHECK_MSG(topo_.empty(), "network is frozen");
  MFT_CHECK(coeff >= 0.0);
  MFT_CHECK_MSG(on != of, "self-load belongs in a_self");
  MFT_CHECK_MSG(!is_source(of), "sources are not sizeable loads");
  verts_[static_cast<std::size_t>(on)].loads.push_back(LoadTerm{of, coeff});
}

void SizingNetwork::add_b(NodeId v, double delta) {
  MFT_CHECK_MSG(topo_.empty(), "network is frozen");
  verts_[static_cast<std::size_t>(v)].b += delta;
  MFT_CHECK(verts_[static_cast<std::size_t>(v)].b >= 0.0);
}

void SizingNetwork::add_a_self(NodeId v, double delta) {
  MFT_CHECK_MSG(topo_.empty(), "network is frozen");
  verts_[static_cast<std::size_t>(v)].a_self += delta;
  MFT_CHECK(verts_[static_cast<std::size_t>(v)].a_self >= 0.0);
}

void SizingNetwork::set_po(NodeId v, bool po) {
  MFT_CHECK_MSG(topo_.empty(), "network is frozen");
  verts_[static_cast<std::size_t>(v)].is_po = po;
}

SizingNetwork SizingNetwork::clone() const {
  SizingNetwork c(*this);
  if (c.serial_ != 0) c.serial_ = mint_serial();
  return c;
}

void SizingNetwork::eco_add_b(NodeId v, double delta) {
  MFT_CHECK_MSG(frozen(), "eco_add_b is a post-freeze edit");
  MFT_CHECK_MSG(!is_source(v), "sources carry no load");
  SizingVertex& sv = verts_[static_cast<std::size_t>(v)];
  sv.b += delta;
  MFT_CHECK_MSG(sv.b > 0.0 || !sv.loads.empty(),
                "ECO edit would leave vertex '" << name(v)
                                               << "' with degenerate delay");
  MFT_CHECK(sv.b >= 0.0);
  // Keep the two frozen representations coherent: hot kernels read the
  // SweepPlan row, cold paths read the AoS record.
  plan_.b[static_cast<std::size_t>(plan_.pos_of[static_cast<std::size_t>(v)])] =
      sv.b;
  serial_ = mint_serial();
}

void SizingNetwork::freeze() {
  serial_ = mint_serial();
  MFT_CHECK(num_vertices() == dag_.num_nodes());
  auto order = dag_.topological_order();
  MFT_CHECK_MSG(order.has_value(), "sizing network has a timing cycle");
  topo_ = std::move(*order);
  rev_loads_.assign(static_cast<std::size_t>(num_vertices()), {});
  for (NodeId j = 0; j < num_vertices(); ++j)
    for (const LoadTerm& t : verts_[static_cast<std::size_t>(j)].loads)
      rev_loads_[static_cast<std::size_t>(t.vertex)].push_back(
          LoadTerm{j, t.coeff});
  for (NodeId v = 0; v < num_vertices(); ++v) {
    const SizingVertex& sv = verts_[static_cast<std::size_t>(v)];
    if (sv.kind == VertexKind::kSource) {
      MFT_CHECK_MSG(sv.loads.empty() && sv.a_self == 0.0 && sv.b == 0.0,
                    "source vertex '" << name(v) << "' must be delay-free");
    } else {
      MFT_CHECK_MSG(sv.b > 0.0 || !sv.loads.empty(),
                    "sizeable vertex '" << name(v)
                                        << "' has no load: delay would be "
                                           "degenerate (zero)");
    }
  }
  compute_levels();
  build_plan();
}

void SizingNetwork::compute_levels() {
  const std::size_t n = static_cast<std::size_t>(num_vertices());
  topo_pos_.assign(n, 0);
  for (std::size_t i = 0; i < topo_.size(); ++i)
    topo_pos_[static_cast<std::size_t>(topo_[i])] = static_cast<int>(i);

  // Longest-path depth over the union of arcs and load terms, every load
  // term oriented forward in topological order (see the header comment).
  // All union edges then point forward in topo order, so one pass relaxing
  // each vertex's outgoing union edges computes the depth exactly.
  level_of_.assign(n, 0);
  for (const NodeId v : topo_) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const int next = level_of_[vi] + 1;
    auto bump = [&](NodeId u) {
      const std::size_t ui = static_cast<std::size_t>(u);
      if (level_of_[ui] < next) level_of_[ui] = next;
    };
    for (const ArcId a : dag_.out_arcs(v)) bump(dag_.head(a));
    for (const LoadTerm& t : verts_[vi].loads)
      if (topo_pos_[static_cast<std::size_t>(t.vertex)] > topo_pos_[vi])
        bump(t.vertex);
    for (const LoadTerm& t : rev_loads_[vi])
      if (topo_pos_[static_cast<std::size_t>(t.vertex)] > topo_pos_[vi])
        bump(t.vertex);
  }

  int levels = 0;
  for (const int l : level_of_) levels = std::max(levels, l + 1);
  if (n == 0) levels = 0;
  level_offsets_.assign(static_cast<std::size_t>(levels) + 1, 0);
  for (const int l : level_of_) ++level_offsets_[static_cast<std::size_t>(l) + 1];
  for (int l = 0; l < levels; ++l)
    level_offsets_[static_cast<std::size_t>(l) + 1] +=
        level_offsets_[static_cast<std::size_t>(l)];
  // Appending in topo order sorts each level by topological position.
  level_order_.resize(n);
  std::vector<int> cursor(level_offsets_.begin(), level_offsets_.end() - 1);
  for (const NodeId v : topo_)
    level_order_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(
            level_of_[static_cast<std::size_t>(v)])]++)] = v;
}

void SizingNetwork::build_plan() {
  const int n = num_vertices();
  const std::size_t ns = static_cast<std::size_t>(n);
  SweepPlan& p = plan_;
  p.n = n;
  p.vid = level_order_;
  p.pos_of.assign(ns, 0);
  for (int i = 0; i < n; ++i)
    p.pos_of[static_cast<std::size_t>(p.vid[static_cast<std::size_t>(i)])] = i;

  p.a_self.resize(ns);
  p.b.resize(ns);
  p.topo_pos.resize(ns);
  p.source.resize(ns);
  p.sink.resize(ns);
  p.load_off.assign(ns + 1, 0);
  p.rload_off.assign(ns + 1, 0);
  p.fanin_off.assign(ns + 1, 0);
  p.fanout_off.assign(ns + 1, 0);
  for (int i = 0; i < n; ++i) {
    const std::size_t pi = static_cast<std::size_t>(i);
    const NodeId v = p.vid[pi];
    const std::size_t vi = static_cast<std::size_t>(v);
    const SizingVertex& sv = verts_[vi];
    p.a_self[pi] = sv.a_self;
    p.b[pi] = sv.b;
    p.topo_pos[pi] = topo_pos_[vi];
    p.source[pi] = sv.kind == VertexKind::kSource ? 1 : 0;
    p.sink[pi] = (sv.is_po || dag_.out_arcs(v).empty()) ? 1 : 0;
    p.load_off[pi + 1] = p.load_off[pi] + static_cast<int>(sv.loads.size());
    p.rload_off[pi + 1] =
        p.rload_off[pi] + static_cast<int>(rev_loads_[vi].size());
    p.fanin_off[pi + 1] =
        p.fanin_off[pi] + static_cast<int>(dag_.in_arcs(v).size());
    p.fanout_off[pi + 1] =
        p.fanout_off[pi] + static_cast<int>(dag_.out_arcs(v).size());
  }
  p.load_pos.resize(static_cast<std::size_t>(p.load_off[ns]));
  p.load_coeff.resize(static_cast<std::size_t>(p.load_off[ns]));
  p.rload_pos.resize(static_cast<std::size_t>(p.rload_off[ns]));
  p.rload_coeff.resize(static_cast<std::size_t>(p.rload_off[ns]));
  p.fanin_pos.resize(static_cast<std::size_t>(p.fanin_off[ns]));
  p.fanout_pos.resize(static_cast<std::size_t>(p.fanout_off[ns]));
  for (int i = 0; i < n; ++i) {
    const std::size_t pi = static_cast<std::size_t>(i);
    const NodeId v = p.vid[pi];
    const std::size_t vi = static_cast<std::size_t>(v);
    // Term order within each row is preserved exactly from the AoS form,
    // so CSR folds are bit-identical to the historical per-vertex walks.
    int k = p.load_off[pi];
    for (const LoadTerm& t : verts_[vi].loads) {
      p.load_pos[static_cast<std::size_t>(k)] =
          p.pos_of[static_cast<std::size_t>(t.vertex)];
      p.load_coeff[static_cast<std::size_t>(k)] = t.coeff;
      ++k;
    }
    k = p.rload_off[pi];
    for (const LoadTerm& t : rev_loads_[vi]) {
      p.rload_pos[static_cast<std::size_t>(k)] =
          p.pos_of[static_cast<std::size_t>(t.vertex)];
      p.rload_coeff[static_cast<std::size_t>(k)] = t.coeff;
      ++k;
    }
    k = p.fanin_off[pi];
    for (const ArcId a : dag_.in_arcs(v))
      p.fanin_pos[static_cast<std::size_t>(k++)] =
          p.pos_of[static_cast<std::size_t>(dag_.tail(a))];
    k = p.fanout_off[pi];
    for (const ArcId a : dag_.out_arcs(v))
      p.fanout_pos[static_cast<std::size_t>(k++)] =
          p.pos_of[static_cast<std::size_t>(dag_.head(a))];
  }
}

std::vector<double> SizingNetwork::min_sizes() const {
  std::vector<double> x(static_cast<std::size_t>(num_vertices()), 0.0);
  for (NodeId v = 0; v < num_vertices(); ++v)
    if (!is_source(v)) x[static_cast<std::size_t>(v)] = tech_.min_size;
  return x;
}

double SizingNetwork::delay(NodeId v, const std::vector<double>& sizes) const {
  if (frozen()) {
    // Stream the frozen CSR row instead of chasing the per-vertex heap
    // vector; the term order (and therefore the sum) is identical.
    const SweepPlan& pl = plan_;
    const std::size_t p =
        static_cast<std::size_t>(pl.pos_of[static_cast<std::size_t>(v)]);
    if (pl.source[p]) return 0.0;
    MFT_DCHECK(sizes[static_cast<std::size_t>(v)] > 0.0);
    double load = pl.b[p];
    for (int k = pl.load_off[p]; k < pl.load_off[p + 1]; ++k)
      load += pl.load_coeff[static_cast<std::size_t>(k)] *
              sizes[static_cast<std::size_t>(
                  pl.vid[static_cast<std::size_t>(
                      pl.load_pos[static_cast<std::size_t>(k)])])];
    return pl.a_self[p] + load / sizes[static_cast<std::size_t>(v)];
  }
  const SizingVertex& sv = vertex(v);
  if (sv.kind == VertexKind::kSource) return 0.0;
  const double x = sizes[static_cast<std::size_t>(v)];
  MFT_DCHECK(x > 0.0);
  double load = sv.b;
  for (const LoadTerm& t : sv.loads)
    load += t.coeff * sizes[static_cast<std::size_t>(t.vertex)];
  return sv.a_self + load / x;
}

double SizingNetwork::area(const std::vector<double>& sizes) const {
  // Id-order summation on purpose: callers (tests, reports, the engine's
  // area bookkeeping) pin these exact FP sums, and the sweep permutation
  // must not change them.
  double a = 0.0;
  if (frozen()) {
    const SweepPlan& pl = plan_;
    for (NodeId v = 0; v < num_vertices(); ++v)
      if (!pl.source[static_cast<std::size_t>(
              pl.pos_of[static_cast<std::size_t>(v)])])
        a += sizes[static_cast<std::size_t>(v)];
    return a;
  }
  for (NodeId v = 0; v < num_vertices(); ++v)
    if (!is_source(v)) a += sizes[static_cast<std::size_t>(v)];
  return a;
}

std::vector<double> SizingNetwork::area_delay_weights(
    const std::vector<double>& sizes) const {
  MFT_CHECK(frozen());
  // Solve (D−A)^T y = 1:
  //   y_i = (1 + Σ_{j loads i} a_ji · y_j) / (delay(i) − a_self_i).
  // For gate sizing, loads strictly point downstream and one Gauss–Seidel
  // sweep in topological order is exact ((D−A) is triangular, §2.3). For
  // transistor sizing, vertices sharing an electrical node load each other
  // mutually ((D−A) is *block* triangular), so we iterate sweeps; the
  // coupling is the weak parasitic term, so convergence is geometric.
  //
  // The sweep runs in sweep-position order over the frozen CSR. This is
  // bit-identical to the historical topological-order walk: load terms
  // strictly cross levels, so for every reverse-load term (j, a_ji) of i,
  // y_j was updated before i exactly when topo_pos(j) < topo_pos(i) —
  // in both walk orders — and each row folds its terms in stored order.
  const SweepPlan& pl = plan_;
  const std::size_t n = static_cast<std::size_t>(pl.n);
  std::vector<double> sizes_pos;
  pl.gather(sizes, sizes_pos);
  std::vector<double> y(n, 0.0);
  std::vector<double> denom(n, 1.0);
  for (int p = 0; p < pl.n; ++p) {
    const std::size_t pi = static_cast<std::size_t>(p);
    if (pl.source[pi]) continue;
    denom[pi] = pl.delay_at(p, sizes_pos) - pl.a_self[pi];
    MFT_CHECK_MSG(denom[pi] > 0.0,
                  "degenerate delay at '" << name(pl.vid[pi]) << "'");
  }
  for (int sweep = 0; sweep < 50; ++sweep) {
    double max_delta = 0.0;
    for (int p = 0; p < pl.n; ++p) {
      const std::size_t pi = static_cast<std::size_t>(p);
      if (pl.source[pi]) continue;
      double acc = 1.0;
      for (int k = pl.rload_off[pi]; k < pl.rload_off[pi + 1]; ++k)
        acc += pl.rload_coeff[static_cast<std::size_t>(k)] *
               y[static_cast<std::size_t>(
                   pl.rload_pos[static_cast<std::size_t>(k)])];
      const double yv = acc / denom[pi];
      max_delta = std::max(max_delta, std::abs(yv - y[pi]));
      y[pi] = yv;
    }
    if (max_delta < 1e-12) break;
  }
  std::vector<double> weights(n, 0.0);
  for (NodeId v = 0; v < num_vertices(); ++v) {
    const std::size_t pi =
        static_cast<std::size_t>(pl.pos_of[static_cast<std::size_t>(v)]);
    if (!pl.source[pi])
      weights[static_cast<std::size_t>(v)] =
          sizes[static_cast<std::size_t>(v)] * y[pi];
  }
  return weights;
}

}  // namespace mft
