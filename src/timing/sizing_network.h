// The sizing IR: the circuit DAG of paper §2.1–2.2 annotated with the
// simple-monotonic delay decomposition of eq. (4)–(5).
//
// Every sizeable element (equivalent-inverter gate, individual transistor,
// or wire) is a vertex i with size x_i and delay
//
//     delay(i) = (a_self_i·x_i + Σ_j a_ij·x_j + b_i) / x_i
//
// i.e. exactly  delay(i)·x_i = Σ_j a_ij·x_j + b_i  with the diagonal term
// a_ii = a_self capturing self-loading. Sources (primary inputs) carry no
// size and zero delay. Timing-precedence arcs (the DAG) are stored
// separately from load coefficients: a load a_ij says "x_j appears in
// delay(i)", an arc i→j says "a transition traverses i before j".
//
// Both lowerings (gate_lowering, transistor_lowering) produce this IR; STA,
// TILOS, the W-phase and the D-phase all operate on it, which is what makes
// the optimizer granularity-agnostic (paper feature 2).
//
// Two representations coexist after freeze():
//  - the construction-time array-of-structs (`vertex(v)`, per-vertex load
//    vectors, `reverse_loads()`) — the convenient form for lowerings, shard
//    extraction, and validation, and
//  - the flat SweepPlan (`plan()`) — the level-contiguous structure-of-
//    arrays copy every hot kernel (STA sweeps, W-phase Gauss–Seidel, TILOS
//    bump evaluation, delay/area/area_delay_weights) actually streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "timing/tech.h"

namespace mft {

enum class VertexKind {
  kSource,      ///< primary input: no size, zero delay
  kGate,        ///< equivalent-inverter gate (gate sizing)
  kTransistor,  ///< single transistor (true transistor sizing)
  kWire,        ///< sizeable wire (the §2.1 wire-sizing extension)
};

/// One (vertex, coefficient) load term a_ij.
struct LoadTerm {
  NodeId vertex = kInvalidNode;
  double coeff = 0.0;
};

/// Construction-time vertex record. Deliberately dense: the name lives in a
/// side table on the network (SizingNetwork::name) so scans over the vertex
/// array never drag string headers through the cache.
struct SizingVertex {
  VertexKind kind = VertexKind::kGate;
  double a_self = 0.0;          ///< a_ii
  double b = 0.0;               ///< constant term b_i
  std::vector<LoadTerm> loads;  ///< off-diagonal a_ij, j != i
  bool is_po = false;           ///< drives a primary output (gets C_L in b)
  int origin_gate = -1;         ///< netlist GateId this vertex came from
};

/// Flat, frozen, level-contiguous structure-of-arrays view of the network,
/// built once at freeze(). "Sweep position" p is the index of a vertex in
/// level_order() — a valid topological order whose levels are contiguous
/// runs (level l = positions level_offsets()[l] .. level_offsets()[l+1]).
/// All neighbor references in the CSR arrays are sweep positions, so a
/// kernel that keeps its per-vertex values in sweep-position order touches
/// only O(level width) memory per level instead of striding the whole
/// network: the offsets, coefficients, and SoA attribute arrays stream
/// linearly, and the value gathers land in the adjacent levels just
/// written.
///
/// Per-vertex term order is preserved exactly from the AoS form (loads in
/// SizingVertex::loads order, reverse loads in reverse_loads() order, arcs
/// in in_arcs/out_arcs order), so kernels that fold them produce
/// bit-identical sums to the historical AoS walks.
struct SweepPlan {
  int n = 0;  ///< vertex count (positions and ids both range over [0, n))

  // Permutation between vertex ids and sweep positions.
  std::vector<NodeId> vid;  ///< pos -> vertex id (== level_order())
  std::vector<int> pos_of;  ///< vertex id -> pos

  // Per-position SoA attributes.
  std::vector<double> a_self;           ///< a_ii
  std::vector<double> b;                ///< constant load term
  std::vector<int> topo_pos;            ///< topo_position()[vid[p]] (cp ties)
  std::vector<unsigned char> source;    ///< kind == kSource
  std::vector<unsigned char> sink;      ///< is_po || out_degree == 0

  // Loads of p (the x_j appearing in delay(p)), CSR over positions.
  std::vector<int> load_off;            ///< size n+1
  std::vector<int> load_pos;            ///< position of the loaded vertex
  std::vector<double> load_coeff;
  // Reverse loads: the vertices whose delay grows when x_p grows.
  std::vector<int> rload_off;
  std::vector<int> rload_pos;
  std::vector<double> rload_coeff;
  // Timing arcs, both directions, CSR over positions.
  std::vector<int> fanin_off;
  std::vector<int> fanin_pos;
  std::vector<int> fanout_off;
  std::vector<int> fanout_pos;

  /// delay of the vertex at position p, sizes indexed by *position*.
  /// Bit-identical to SizingNetwork::delay: b first, then the load terms in
  /// their original order, one division at the end.
  double delay_at(int p, const std::vector<double>& sizes_pos) const {
    const std::size_t pi = static_cast<std::size_t>(p);
    if (source[pi]) return 0.0;
    double load = b[pi];
    for (int k = load_off[pi]; k < load_off[pi + 1]; ++k)
      load += load_coeff[static_cast<std::size_t>(k)] *
              sizes_pos[static_cast<std::size_t>(
                  load_pos[static_cast<std::size_t>(k)])];
    return a_self[pi] + load / sizes_pos[pi];
  }

  /// Fast-math variant: the load fold runs on two independent accumulators
  /// (FP reassociation), which unlocks vectorized/pipelined reductions but
  /// changes the last bits of the sum. Only reachable through the
  /// explicitly gated fast-math mode — never in the default (deterministic)
  /// configuration. Accuracy contract (layout_test enforces it): each
  /// per-vertex delay agrees with delay_at to within 1e-12 relative (the
  /// load terms are all positive, so the reassociated sum loses at most a
  /// few ULP), and accumulated path quantities (AT/RT/CP) stay within
  /// 1e-9 relative.
  double delay_at_fast(int p, const std::vector<double>& sizes_pos) const {
    const std::size_t pi = static_cast<std::size_t>(p);
    if (source[pi]) return 0.0;
    double acc0 = b[pi];
    double acc1 = 0.0;
    int k = load_off[pi];
    const int end = load_off[pi + 1];
    for (; k + 1 < end; k += 2) {
      acc0 += load_coeff[static_cast<std::size_t>(k)] *
              sizes_pos[static_cast<std::size_t>(
                  load_pos[static_cast<std::size_t>(k)])];
      acc1 += load_coeff[static_cast<std::size_t>(k + 1)] *
              sizes_pos[static_cast<std::size_t>(
                  load_pos[static_cast<std::size_t>(k + 1)])];
    }
    if (k < end)
      acc0 += load_coeff[static_cast<std::size_t>(k)] *
              sizes_pos[static_cast<std::size_t>(
                  load_pos[static_cast<std::size_t>(k)])];
    return a_self[pi] + (acc0 + acc1) / sizes_pos[pi];
  }

  /// Gather an id-indexed per-vertex vector into sweep-position order.
  void gather(const std::vector<double>& by_id,
              std::vector<double>& by_pos) const {
    by_pos.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p)
      by_pos[static_cast<std::size_t>(p)] =
          by_id[static_cast<std::size_t>(vid[static_cast<std::size_t>(p)])];
  }

  /// Scatter a sweep-position-ordered vector back to id indexing.
  void scatter(const std::vector<double>& by_pos,
               std::vector<double>& by_id) const {
    by_id.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p)
      by_id[static_cast<std::size_t>(vid[static_cast<std::size_t>(p)])] =
          by_pos[static_cast<std::size_t>(p)];
  }
};

/// The sizing network. Construction: add vertices, add timing arcs, add
/// loads, then freeze(); afterwards only sizes change.
class SizingNetwork {
 public:
  explicit SizingNetwork(const Tech& tech) : tech_(tech) {}

  NodeId add_vertex(SizingVertex v, std::string name = {});
  void add_arc(NodeId from, NodeId to) { dag_.add_arc(from, to); }
  void add_load(NodeId on, NodeId of, double coeff);

  /// Pre-freeze adjustments used by the lowerings.
  void add_b(NodeId v, double delta);
  void add_a_self(NodeId v, double delta);
  void set_po(NodeId v, bool po);

  /// Deep copy with a *fresh* serial. The copy is its own network for
  /// workspace-keying purposes: scratches cached against the original will
  /// rebuild rather than silently reuse stale per-topology state. Used by
  /// the ECO path, which mutates the copy's constant loads in place.
  SizingNetwork clone() const;

  /// Post-freeze ECO edit: shift the constant load term b of a sizeable
  /// vertex (a load added or removed by an engineering change) without
  /// re-lowering. Updates both the AoS record and the frozen SweepPlan row
  /// and mints a fresh serial, so every serial-keyed workspace treats the
  /// edited network as new and recomputes from scratch. Topology (arcs,
  /// load sparsity, levels) is unchanged — only the coefficient moves.
  void eco_add_b(NodeId v, double delta);

  /// Validates invariants (DAG, coefficient signs, sources have no loads),
  /// caches the topological order, and builds the SweepPlan. Must be called
  /// before analysis.
  void freeze();
  bool frozen() const { return !topo_.empty() || num_vertices() == 0; }

  /// Unique id assigned at freeze() (0 before). Workspaces that cache
  /// per-topology state (TimingScratch, DPhaseWorkspace) key on it to
  /// detect being handed a different network and fall back to a rebuild.
  std::uint64_t serial() const { return serial_; }

  int num_vertices() const { return static_cast<int>(verts_.size()); }
  /// Number of sizeable (non-source) vertices.
  int num_sizeable() const { return num_sizeable_; }
  const SizingVertex& vertex(NodeId v) const {
    return verts_[static_cast<std::size_t>(v)];
  }
  /// Debug name of a vertex (side table — names never sit in the hot
  /// vertex array).
  const std::string& name(NodeId v) const {
    return names_[static_cast<std::size_t>(v)];
  }
  const Digraph& dag() const { return dag_; }
  const Tech& tech() const { return tech_; }
  const std::vector<NodeId>& topological_order() const { return topo_; }

  bool is_source(NodeId v) const {
    return vertex(v).kind == VertexKind::kSource;
  }

  /// reverse_loads()[i] = all (j, a_ji) with a load of j on i — i.e. the
  /// vertices whose delay grows when x_i grows. Available after freeze().
  const std::vector<std::vector<LoadTerm>>& reverse_loads() const {
    MFT_CHECK(frozen());
    return rev_loads_;
  }

  /// The flat level-contiguous SoA view (see SweepPlan). Available after
  /// freeze(); every hot kernel streams these arrays instead of walking
  /// vertex(v).
  const SweepPlan& plan() const {
    MFT_CHECK(frozen());
    return plan_;
  }

  // --- Levelization (cached at freeze) -----------------------------------
  //
  // level_of()[v] is the longest-path depth of v in the union graph of the
  // timing arcs and the load terms, with every load term oriented to agree
  // with the cached topological order. Consequences, which the parallel
  // sweeps in sta.cc / wphase.cc rely on (asserted by tests/parallel_test):
  //
  //  - no two same-level vertices share an arc or a load term, so one level
  //    can be updated by concurrent threads without a data race;
  //  - for every load a_ij, x_j settles before (level ascending) exactly
  //    when topological position j < i — i.e. a sweep that walks levels in
  //    (reverse) order reads bit-for-bit the same neighbor values as the
  //    sequential (reverse-)topological sweep.

  /// Number of levels (0 for an empty network).
  int num_levels() const {
    MFT_CHECK(frozen());
    return level_offsets_.empty()
               ? 0
               : static_cast<int>(level_offsets_.size()) - 1;
  }
  /// Per-vertex level index.
  const std::vector<int>& level_of() const {
    MFT_CHECK(frozen());
    return level_of_;
  }
  /// All vertices grouped by level (ascending), ordered within a level by
  /// topological position: level l is level_order()[level_offsets()[l] ..
  /// level_offsets()[l+1]). This is itself a valid topological order, and
  /// is exactly the SweepPlan's position ordering (plan().vid).
  const std::vector<NodeId>& level_order() const {
    MFT_CHECK(frozen());
    return level_order_;
  }
  const std::vector<int>& level_offsets() const {
    MFT_CHECK(frozen());
    return level_offsets_;
  }
  /// topo_position()[v] = index of v in topological_order(); the tie-break
  /// key that keeps parallel argmax reductions identical to sequential.
  const std::vector<int>& topo_position() const {
    MFT_CHECK(frozen());
    return topo_pos_;
  }

  /// Uniform starting point: every sizeable vertex at min_size, sources 0.
  std::vector<double> min_sizes() const;

  /// delay(v) under `sizes` (0 for sources).
  double delay(NodeId v, const std::vector<double>& sizes) const;

  /// Σ x_i over sizeable vertices — the paper's objective (eq. (1)).
  double area(const std::vector<double>& sizes) const;

  /// Sensitivity weights C_i = x_i · y_i with (D−A)^T y = 1 (DESIGN.md
  /// §2.2): the first-order decrease in total area per unit of extra delay
  /// budget at vertex i. Solved by one pass in topological order.
  std::vector<double> area_delay_weights(const std::vector<double>& sizes) const;

 private:
  void compute_levels();
  void build_plan();

  Tech tech_;
  Digraph dag_;
  std::vector<SizingVertex> verts_;
  std::vector<std::string> names_;  ///< side table, indexed by vertex id
  std::vector<NodeId> topo_;
  std::vector<std::vector<LoadTerm>> rev_loads_;
  std::vector<int> topo_pos_;
  std::vector<int> level_of_;
  std::vector<NodeId> level_order_;
  std::vector<int> level_offsets_;
  SweepPlan plan_;
  int num_sizeable_ = 0;
  std::uint64_t serial_ = 0;
};

}  // namespace mft
