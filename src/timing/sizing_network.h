// The sizing IR: the circuit DAG of paper §2.1–2.2 annotated with the
// simple-monotonic delay decomposition of eq. (4)–(5).
//
// Every sizeable element (equivalent-inverter gate, individual transistor,
// or wire) is a vertex i with size x_i and delay
//
//     delay(i) = (a_self_i·x_i + Σ_j a_ij·x_j + b_i) / x_i
//
// i.e. exactly  delay(i)·x_i = Σ_j a_ij·x_j + b_i  with the diagonal term
// a_ii = a_self capturing self-loading. Sources (primary inputs) carry no
// size and zero delay. Timing-precedence arcs (the DAG) are stored
// separately from load coefficients: a load a_ij says "x_j appears in
// delay(i)", an arc i→j says "a transition traverses i before j".
//
// Both lowerings (gate_lowering, transistor_lowering) produce this IR; STA,
// TILOS, the W-phase and the D-phase all operate on it, which is what makes
// the optimizer granularity-agnostic (paper feature 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "timing/tech.h"

namespace mft {

enum class VertexKind {
  kSource,      ///< primary input: no size, zero delay
  kGate,        ///< equivalent-inverter gate (gate sizing)
  kTransistor,  ///< single transistor (true transistor sizing)
  kWire,        ///< sizeable wire (the §2.1 wire-sizing extension)
};

/// One (vertex, coefficient) load term a_ij.
struct LoadTerm {
  NodeId vertex = kInvalidNode;
  double coeff = 0.0;
};

struct SizingVertex {
  VertexKind kind = VertexKind::kGate;
  std::string name;
  double a_self = 0.0;          ///< a_ii
  double b = 0.0;               ///< constant term b_i
  std::vector<LoadTerm> loads;  ///< off-diagonal a_ij, j != i
  bool is_po = false;           ///< drives a primary output (gets C_L in b)
  int origin_gate = -1;         ///< netlist GateId this vertex came from
};

/// The sizing network. Construction: add vertices, add timing arcs, add
/// loads, then freeze(); afterwards only sizes change.
class SizingNetwork {
 public:
  explicit SizingNetwork(const Tech& tech) : tech_(tech) {}

  NodeId add_vertex(SizingVertex v);
  void add_arc(NodeId from, NodeId to) { dag_.add_arc(from, to); }
  void add_load(NodeId on, NodeId of, double coeff);

  /// Pre-freeze adjustments used by the lowerings.
  void add_b(NodeId v, double delta);
  void add_a_self(NodeId v, double delta);
  void set_po(NodeId v, bool po);

  /// Validates invariants (DAG, coefficient signs, sources have no loads)
  /// and caches the topological order. Must be called before analysis.
  void freeze();
  bool frozen() const { return !topo_.empty() || num_vertices() == 0; }

  /// Unique id assigned at freeze() (0 before). Workspaces that cache
  /// per-topology state (TimingScratch, DPhaseWorkspace) key on it to
  /// detect being handed a different network and fall back to a rebuild.
  std::uint64_t serial() const { return serial_; }

  int num_vertices() const { return static_cast<int>(verts_.size()); }
  /// Number of sizeable (non-source) vertices.
  int num_sizeable() const { return num_sizeable_; }
  const SizingVertex& vertex(NodeId v) const {
    return verts_[static_cast<std::size_t>(v)];
  }
  const Digraph& dag() const { return dag_; }
  const Tech& tech() const { return tech_; }
  const std::vector<NodeId>& topological_order() const { return topo_; }

  bool is_source(NodeId v) const {
    return vertex(v).kind == VertexKind::kSource;
  }

  /// reverse_loads()[i] = all (j, a_ji) with a load of j on i — i.e. the
  /// vertices whose delay grows when x_i grows. Available after freeze().
  const std::vector<std::vector<LoadTerm>>& reverse_loads() const {
    MFT_CHECK(frozen());
    return rev_loads_;
  }

  // --- Levelization (cached at freeze) -----------------------------------
  //
  // level_of()[v] is the longest-path depth of v in the union graph of the
  // timing arcs and the load terms, with every load term oriented to agree
  // with the cached topological order. Consequences, which the parallel
  // sweeps in sta.cc / wphase.cc rely on (asserted by tests/parallel_test):
  //
  //  - no two same-level vertices share an arc or a load term, so one level
  //    can be updated by concurrent threads without a data race;
  //  - for every load a_ij, x_j settles before (level ascending) exactly
  //    when topological position j < i — i.e. a sweep that walks levels in
  //    (reverse) order reads bit-for-bit the same neighbor values as the
  //    sequential (reverse-)topological sweep.

  /// Number of levels (0 for an empty network).
  int num_levels() const {
    MFT_CHECK(frozen());
    return level_offsets_.empty()
               ? 0
               : static_cast<int>(level_offsets_.size()) - 1;
  }
  /// Per-vertex level index.
  const std::vector<int>& level_of() const {
    MFT_CHECK(frozen());
    return level_of_;
  }
  /// All vertices grouped by level (ascending), ordered within a level by
  /// topological position: level l is level_order()[level_offsets()[l] ..
  /// level_offsets()[l+1]). This is itself a valid topological order.
  const std::vector<NodeId>& level_order() const {
    MFT_CHECK(frozen());
    return level_order_;
  }
  const std::vector<int>& level_offsets() const {
    MFT_CHECK(frozen());
    return level_offsets_;
  }
  /// topo_position()[v] = index of v in topological_order(); the tie-break
  /// key that keeps parallel argmax reductions identical to sequential.
  const std::vector<int>& topo_position() const {
    MFT_CHECK(frozen());
    return topo_pos_;
  }

  /// Uniform starting point: every sizeable vertex at min_size, sources 0.
  std::vector<double> min_sizes() const;

  /// delay(v) under `sizes` (0 for sources).
  double delay(NodeId v, const std::vector<double>& sizes) const;

  /// Σ x_i over sizeable vertices — the paper's objective (eq. (1)).
  double area(const std::vector<double>& sizes) const;

  /// Sensitivity weights C_i = x_i · y_i with (D−A)^T y = 1 (DESIGN.md
  /// §2.2): the first-order decrease in total area per unit of extra delay
  /// budget at vertex i. Solved by one pass in topological order.
  std::vector<double> area_delay_weights(const std::vector<double>& sizes) const;

 private:
  void compute_levels();

  Tech tech_;
  Digraph dag_;
  std::vector<SizingVertex> verts_;
  std::vector<NodeId> topo_;
  std::vector<std::vector<LoadTerm>> rev_loads_;
  std::vector<int> topo_pos_;
  std::vector<int> level_of_;
  std::vector<NodeId> level_order_;
  std::vector<int> level_offsets_;
  int num_sizeable_ = 0;
  std::uint64_t serial_ = 0;
};

}  // namespace mft
