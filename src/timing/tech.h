// Technology parameters for the Elmore delay model.
//
// The paper's constants (eq. (2)): A = unit-transistor resistance, B/C =
// unit drain/source capacitance, D/E = wire capacitances, C_L = output
// load. We work in normalized units (R_unit = C_in = 1), which is
// sufficient because the paper's evaluation reports only *relative* area
// (vs. minimum-sized) and *relative* delay (vs. Dmin) — see DESIGN.md §3.
//
// For gate sizing, a gate is modeled as an equivalent inverter whose drive
// resistance and pin capacitance are scaled by logical-effort-style factors
// per gate kind (Sutherland/Sproull-style: NANDk g=(k+2)/3, NORk
// g=(2k+1)/3), so multi-input gates are intrinsically slower and heavier —
// the same asymmetry the per-transistor model exposes exactly.
#pragma once

#include "netlist/cell.h"

namespace mft {

struct Tech {
  double r_unit = 1.0;    ///< output resistance of a unit-size device (A)
  double c_in = 1.0;      ///< gate (input) capacitance per unit size
  double c_par = 0.15;    ///< drain/source parasitic cap per unit size (B,C)
                          ///< (low enough that 0.4·Dmin targets stay
                          ///< reachable, as in the paper's §3 experiments)
  double c_wire = 0.6;    ///< wire capacitance per fanout branch (D,E)
  double c_po_load = 4.0; ///< primary-output load capacitance (C_L)

  double min_size = 1.0;
  double max_size = 128.0;
};

/// Logical effort g(kind, fanin): relative drive resistance (and pin
/// capacitance) of the gate vs. an inverter at equal size. Composite kinds
/// (AND/OR/XOR/...) get effective single-stage approximations — exact
/// values are irrelevant to the optimization, monotonicity in fanin is.
double logical_effort(GateKind kind, int fanin);

/// Parasitic effort p(kind, fanin): self-loading relative to an inverter.
double parasitic_effort(GateKind kind, int fanin);

}  // namespace mft
