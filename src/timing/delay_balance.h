// Delay balancing (paper §2.3.1, "Delay Balancing", ref [13]).
//
// A delay-balanced configuration assigns a fictitious delay unit (FSDU) to
// every edge so that all edge slack is captured explicitly: with a vertex
// schedule t(·), FSDU(i→j) = t(j) − t(i) − delay(i) ≥ 0 and every PI→O path
// sums to CP(G). The D-phase then *displaces* these FSDUs (eq. (9)) via the
// min-cost-flow dual. Two canonical schedules are provided; by the paper's
// Theorem 1 any two balanced configurations are FSDU-displaced versions of
// each other (a property the tests verify).
#pragma once

#include "timing/sta.h"

namespace mft {

enum class BalanceMode {
  kAsap,  ///< t(v) = AT(v): slack pushed onto the latest possible edges
  kAlap,  ///< t(v) = RT(v): slack pulled as early as possible
};

struct DelayBalance {
  std::vector<double> schedule;  ///< t(v) per vertex
  std::vector<double> arc_fsdu;  ///< FSDU per DAG arc
  std::vector<double> po_fsdu;   ///< FSDU on the implicit Dmy(i)→O edge,
                                 ///< meaningful for PO/sink vertices
  double critical_path = 0.0;
};

DelayBalance compute_delay_balance(const SizingNetwork& net,
                                   const TimingReport& timing,
                                   BalanceMode mode = BalanceMode::kAsap);

/// Verifies the balanced-configuration invariants: every FSDU >= -tol and
/// the schedule is consistent (t(j) = t(i) + delay(i) + FSDU(i→j) exactly,
/// sources at t >= 0, POs meeting CP).
bool check_balanced(const SizingNetwork& net, const TimingReport& timing,
                    const DelayBalance& bal, std::string* why = nullptr,
                    double tol = 1e-9);

}  // namespace mft
