#include "lp/dense_simplex.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace mft {
namespace {

constexpr double kEps = 1e-9;

// Standard two-phase tableau simplex with Bland's rule, maximizing.
// Variables are nonnegative; rows are equalities after slack insertion.
class Tableau {
 public:
  // n nonnegative variables, m rows "Ax <= b".
  Tableau(const std::vector<std::vector<double>>& a,
          const std::vector<double>& b, const std::vector<double>& c)
      : m_(static_cast<int>(b.size())), n_(static_cast<int>(c.size())) {
    // Columns: n structural + m slack. Basis starts as the slacks; rows with
    // negative b are fixed up by a phase-1 artificial objective.
    t_.assign(static_cast<std::size_t>(m_ + 1),
              std::vector<double>(static_cast<std::size_t>(n_ + m_ + 1), 0.0));
    basis_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < n_; ++j) row(i)[static_cast<std::size_t>(j)] = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      row(i)[static_cast<std::size_t>(n_ + i)] = 1.0;
      row(i).back() = b[static_cast<std::size_t>(i)];
      basis_[static_cast<std::size_t>(i)] = n_ + i;
    }
    for (int j = 0; j < n_; ++j) obj()[static_cast<std::size_t>(j)] = -c[static_cast<std::size_t>(j)];
  }

  // Returns false on infeasible/unbounded.
  bool solve() {
    if (!make_feasible()) return false;
    return optimize();
  }

  double value(int var) const {
    for (int i = 0; i < m_; ++i)
      if (basis_[static_cast<std::size_t>(i)] == var) return row_const(i).back();
    return 0.0;
  }

 private:
  std::vector<double>& row(int i) { return t_[static_cast<std::size_t>(i)]; }
  const std::vector<double>& row_const(int i) const { return t_[static_cast<std::size_t>(i)]; }
  std::vector<double>& obj() { return t_[static_cast<std::size_t>(m_)]; }

  void pivot(int pr, int pc) {
    auto& prow = row(pr);
    const double pv = prow[static_cast<std::size_t>(pc)];
    for (double& v : prow) v /= pv;
    for (int i = 0; i <= m_; ++i) {
      if (i == pr) continue;
      auto& r = t_[static_cast<std::size_t>(i)];
      const double f = r[static_cast<std::size_t>(pc)];
      if (std::abs(f) < kEps) continue;
      for (std::size_t j = 0; j < r.size(); ++j) r[j] -= f * prow[j];
    }
    basis_[static_cast<std::size_t>(pr)] = pc;
  }

  // Dual-simplex-style repair of negative RHS rows (phase 1).
  bool make_feasible() {
    for (int guard = 0; guard < 10000; ++guard) {
      int pr = -1;
      for (int i = 0; i < m_; ++i)
        if (row_const(i).back() < -kEps && (pr == -1 || basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(pr)]))
          pr = i;
      if (pr == -1) return true;
      // Bland: smallest column with a negative row entry.
      int pc = -1;
      for (int j = 0; j < n_ + m_; ++j)
        if (row_const(pr)[static_cast<std::size_t>(j)] < -kEps) {
          pc = j;
          break;
        }
      if (pc == -1) return false;  // infeasible
      pivot(pr, pc);
    }
    MFT_CHECK_MSG(false, "dense simplex phase-1 did not terminate");
    return false;
  }

  bool optimize() {
    for (int guard = 0; guard < 100000; ++guard) {
      // Bland: first improving column.
      int pc = -1;
      for (int j = 0; j < n_ + m_; ++j)
        if (obj()[static_cast<std::size_t>(j)] < -kEps) {
          pc = j;
          break;
        }
      if (pc == -1) return true;  // optimal
      // Min-ratio row, ties by smallest basis var (Bland).
      int pr = -1;
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double a = row_const(i)[static_cast<std::size_t>(pc)];
        if (a <= kEps) continue;
        const double ratio = row_const(i).back() / a;
        if (pr == -1 || ratio < best - kEps) {
          best = ratio;
          pr = i;
        } else if (ratio < best + kEps &&
                   basis_[static_cast<std::size_t>(i)] <
                       basis_[static_cast<std::size_t>(pr)]) {
          pr = i;  // Bland tie-break on the leaving basic variable
        }
      }
      if (pr == -1) return false;  // unbounded
      pivot(pr, pc);
    }
    MFT_CHECK_MSG(false, "dense simplex phase-2 did not terminate");
    return false;
  }

  int m_, n_;
  std::vector<std::vector<double>> t_;
  std::vector<int> basis_;
};

}  // namespace

DenseLp::DenseLp(int num_vars) : num_vars_(num_vars) {
  MFT_CHECK(num_vars >= 0);
  obj_.assign(static_cast<std::size_t>(num_vars), 0.0);
}

void DenseLp::add_row(const std::vector<double>& coeff, double rhs) {
  MFT_CHECK(static_cast<int>(coeff.size()) == num_vars_);
  rows_.push_back(coeff);
  rhs_.push_back(rhs);
}

void DenseLp::add_bounds(int v, double lo, double hi) {
  MFT_CHECK(v >= 0 && v < num_vars_);
  std::vector<double> row(static_cast<std::size_t>(num_vars_), 0.0);
  row[static_cast<std::size_t>(v)] = 1.0;
  add_row(row, hi);
  row[static_cast<std::size_t>(v)] = -1.0;
  add_row(row, -lo);
}

void DenseLp::set_objective(int v, double coeff) {
  MFT_CHECK(v >= 0 && v < num_vars_);
  obj_[static_cast<std::size_t>(v)] = coeff;
}

std::optional<DenseLp::Solution> DenseLp::solve() const {
  // Split free variables: x = x+ − x−, both nonnegative.
  const int n2 = 2 * num_vars_;
  std::vector<std::vector<double>> a;
  a.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<double> row(static_cast<std::size_t>(n2));
    for (int v = 0; v < num_vars_; ++v) {
      row[static_cast<std::size_t>(v)] = r[static_cast<std::size_t>(v)];
      row[static_cast<std::size_t>(num_vars_ + v)] = -r[static_cast<std::size_t>(v)];
    }
    a.push_back(std::move(row));
  }
  std::vector<double> c(static_cast<std::size_t>(n2));
  for (int v = 0; v < num_vars_; ++v) {
    c[static_cast<std::size_t>(v)] = obj_[static_cast<std::size_t>(v)];
    c[static_cast<std::size_t>(num_vars_ + v)] = -obj_[static_cast<std::size_t>(v)];
  }
  Tableau t(a, rhs_, c);
  if (!t.solve()) return std::nullopt;
  Solution sol;
  sol.x.resize(static_cast<std::size_t>(num_vars_));
  for (int v = 0; v < num_vars_; ++v) {
    sol.x[static_cast<std::size_t>(v)] = t.value(v) - t.value(num_vars_ + v);
    sol.objective += obj_[static_cast<std::size_t>(v)] * sol.x[static_cast<std::size_t>(v)];
  }
  return sol;
}

}  // namespace mft
