// Small dense LP solver (Bland-rule primal simplex on the standard tableau).
//
// This is NOT used by the production sizing flow; it is a slow, simple,
// independent oracle that tests use to validate the min-cost-flow reduction
// of the D-phase LP on small instances. Keeping an oracle with a completely
// different algorithmic lineage is what lets the test suite certify the
// network-simplex + dual-extraction path end to end.
//
// Problem form:
//     maximize  c^T x
//     subject to A x <= b,  x free (internally split into x+ − x−)
#pragma once

#include <optional>
#include <vector>

namespace mft {

/// A dense "maximize c^T x s.t. Ax <= b" instance over free variables.
class DenseLp {
 public:
  explicit DenseLp(int num_vars);

  /// Adds one row: sum_i coeff[i]*x[i] <= rhs. `coeff` arity = num_vars.
  void add_row(const std::vector<double>& coeff, double rhs);

  /// Convenience: a <= x_v <= b as two rows.
  void add_bounds(int v, double lo, double hi);

  void set_objective(int v, double coeff);

  struct Solution {
    std::vector<double> x;
    double objective = 0.0;
  };

  /// Solves; nullopt if infeasible or unbounded.
  std::optional<Solution> solve() const;

  int num_vars() const { return num_vars_; }
  int num_rows() const { return static_cast<int>(rhs_.size()); }

 private:
  int num_vars_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<double> obj_;
};

}  // namespace mft
