#include "gen/iscas_analog.h"

#include "gen/blocks.h"
#include "util/check.h"
#include "util/rng.h"

namespace mft {
namespace {

/// Splices `block` into `nl`: block inputs are driven by fresh PIs, block
/// outputs become POs. Names are prefixed to stay unique.
void splice(Netlist& nl, const Netlist& block, const std::string& prefix) {
  std::vector<GateId> image(static_cast<std::size_t>(block.num_gates()),
                            kInvalidGate);
  for (GateId g : block.topological_order()) {
    const Gate& gate = block.gate(g);
    if (gate.kind == GateKind::kInput) {
      image[static_cast<std::size_t>(g)] = nl.add_input(prefix + gate.name);
      continue;
    }
    std::vector<GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (GateId f : gate.fanins)
      fanins.push_back(image[static_cast<std::size_t>(f)]);
    image[static_cast<std::size_t>(g)] =
        nl.add_gate(gate.kind, prefix + gate.name, std::move(fanins));
  }
  for (GateId g : block.outputs())
    nl.mark_output(image[static_cast<std::size_t>(g)]);
}

}  // namespace

const std::vector<IscasAnalogSpec>& iscas85_specs() {
  static const std::vector<IscasAnalogSpec> kSpecs = {
      {"c432", 160, "27-channel interrupt controller (priority/mux)"},
      {"c499", 202, "32-bit SEC circuit (parity trees)"},
      {"c880", 383, "8-bit ALU"},
      {"c1355", 546, "32-bit SEC circuit, XORs expanded to NANDs"},
      {"c1908", 880, "16-bit SEC/ECAT (parity + decode)"},
      {"c2670", 1193, "12-bit ALU and controller (comparator-heavy)"},
      {"c3540", 1669, "8-bit ALU with BCD logic"},
      {"c5315", 2307, "9-bit ALU with parity and selectors"},
      {"c6288", 2406, "16x16 array multiplier"},
      {"c7552", 3512, "32-bit adder/comparator"},
  };
  return kSpecs;
}

Netlist make_iscas_analog(const std::string& name) {
  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(name));
  const IscasAnalogSpec* spec = nullptr;
  for (const IscasAnalogSpec& s : iscas85_specs())
    if (s.name == name) spec = &s;
  MFT_CHECK_MSG(spec != nullptr, "unknown ISCAS85 circuit '" << name << "'");

  Netlist nl(name + "_analog");
  if (name == "c432") {
    // Priority/interrupt function class: two mux trees over shared selects.
    splice(nl, make_mux_tree(4), "u0_");
    splice(nl, make_mux_tree(3), "u1_");
  } else if (name == "c499") {
    splice(nl, make_parity_sec(32), "u0_");
  } else if (name == "c880") {
    splice(nl, make_alu(8), "u0_");
  } else if (name == "c1355") {
    // The real c1355 is c499 with its XOR cells expanded into NAND networks.
    Netlist mapped = tech_map_to_primitives(make_parity_sec(32));
    splice(nl, mapped, "u0_");
  } else if (name == "c1908") {
    Netlist mapped = tech_map_to_primitives(make_parity_sec(16));
    splice(nl, mapped, "u0_");
    splice(nl, make_comparator(8), "u1_");
  } else if (name == "c2670") {
    splice(nl, make_comparator(12), "u0_");
    splice(nl, make_alu(6), "u1_");
  } else if (name == "c3540") {
    splice(nl, make_alu(8), "u0_");
    splice(nl, make_alu(6), "u1_");
  } else if (name == "c5315") {
    splice(nl, make_alu(9), "u0_");
    splice(nl, make_alu(9), "u1_");
    splice(nl, make_comparator(9), "u2_");
  } else if (name == "c6288") {
    // Structural, no padding: the multiplier IS the benchmark.
    Netlist mult = make_array_multiplier(16);
    splice(nl, mult, "");
    return nl;
  } else if (name == "c7552") {
    splice(nl, make_ripple_adder(32), "u0_");
    splice(nl, make_comparator(32), "u1_");
    splice(nl, make_alu(8), "u2_");
  }
  pad_with_random_logic(nl, spec->published_gates, rng);
  return nl;
}

}  // namespace mft
