// Scalable tiled-datapath generator: the shard-solve workload.
//
// The Table-1 suite tops out at c7552-class sizes (~4k gates); the sharded
// solver exists for netlists 10–100x beyond that, so it needs instances
// that can actually be generated at that scale. make_tiled_datapath builds
// a lanes × stages mesh of small ripple-adder tiles: lane t, stage s adds
// its running value to the previous stage's output of the neighboring lane
// (mesh coupling), so the circuit is deep (stages × adder depth levels),
// wide (lanes × bits per level), and genuinely cross-connected — cutting it
// at a level boundary severs real arcs and loads, which is what makes it a
// meaningful partitioning benchmark rather than `lanes` independent
// circuits. All connections point forward in (stage, then bit) order, so
// the netlist is a DAG by construction. Deterministic: no randomness at
// all, the same params always produce the same netlist.
//
// Size ≈ lanes × stages × bits × 9 NAND gates (a 9-NAND full adder per
// bit): the default 64 × 48 × 4 is ~110k sizing vertices after gate
// lowering; 128 × 96 × 7 is ~800k.
#pragma once

#include "netlist/netlist.h"

namespace mft {

struct TiledDatapathParams {
  int lanes = 64;   ///< parallel lanes (level width)
  int stages = 48;  ///< pipeline stages (level depth)
  int bits = 4;     ///< ripple-adder bits per tile
  /// Cross-lane mesh coupling: stage s of lane t consumes stage s−1 of
  /// lane t−1. Off = `lanes` independent deep adder chains (the
  /// bench_inner shape) — kept as an ablation knob for the partitioner.
  bool mesh = true;
};

/// Approximate logic-gate count for `p` (exact for the current tile).
int tiled_datapath_gates(const TiledDatapathParams& p);

Netlist make_tiled_datapath(const TiledDatapathParams& p = {});

}  // namespace mft
