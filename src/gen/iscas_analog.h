// ISCAS85-analog circuit table.
//
// Each entry maps one benchmark name from the paper's Table 1 to a recipe:
// a structural core block of the same function class as the original
// circuit, padded with seeded random logic to the published gate count.
// The c6288 analog is a genuine 16×16 array multiplier built structurally
// (no padding) because its many-reconvergent-paths character is exactly
// what the paper's headline 16.5% result hinges on.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace mft {

struct IscasAnalogSpec {
  std::string name;          ///< paper's circuit name, e.g. "c432"
  int published_gates;       ///< "# Gates" column of Table 1
  std::string function;      ///< original circuit's documented function
};

/// The ten ISCAS85 circuits of Table 1 in paper order.
const std::vector<IscasAnalogSpec>& iscas85_specs();

/// Builds the analog for `name` ("c432" ... "c7552"). Throws on unknown
/// names. Deterministic.
Netlist make_iscas_analog(const std::string& name);

}  // namespace mft
