// Structural circuit generators.
//
// The paper evaluates on ripple-carry adders (32–256 bit) and the ISCAS85
// suite. The genuine ISCAS85 netlists are not distributable with this
// repository, so src/gen builds *structural analogs*: real arithmetic and
// control blocks (the same function classes as the originals) sized to the
// published gate counts. See DESIGN.md §3 for the substitution argument and
// iscas_analog.h for the per-circuit recipes. All generators are
// deterministic given their seed.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace mft {

/// The well-known 6-NAND c17 benchmark, reproduced exactly.
Netlist make_c17();

/// Ripple-carry adder from 9-NAND full adders (primitive-only netlist).
/// Inputs a0..aN-1, b0..bN-1, cin; outputs s0..sN-1, cout.
/// 9 NAND gates per bit.
Netlist make_ripple_adder(int bits);

/// Unsigned n×n Braun array multiplier from NAND/NOT primitives
/// (AND partial products + full/half adder array). This is the structural
/// analog of c6288 (a 16×16 array multiplier); for n=16 it has ~2.7k gates
/// and the same many-reconvergent-paths character the paper calls out.
Netlist make_array_multiplier(int bits);

/// Single-error-correcting (SEC) style circuit: k overlapping parity
/// (syndrome) trees over `data_bits` inputs, a decode stage, and XOR
/// correction of every data bit — the function class of c499/c1355.
/// Built from XOR/AND/NOT composite cells; tech_map_to_primitives() yields
/// the "expanded" variant (the c1355 relationship to c499).
Netlist make_parity_sec(int data_bits);

/// Balanced 2^sel_bits : 1 multiplexer tree from NAND/NOT primitives.
Netlist make_mux_tree(int sel_bits);

/// n-bit magnitude comparator: equality AND-tree plus a ripple greater-than
/// chain (function class of the comparator half of c2670/c7552).
Netlist make_comparator(int bits);

/// Small ALU: n-bit ripple adder, bitwise AND/OR/XOR planes, and a result
/// mux selected by 2 opcode bits (function class of c880/c3540/c5315).
Netlist make_alu(int bits);

struct RandomLogicParams {
  int num_inputs = 16;
  int num_gates = 200;
  std::uint64_t seed = 1;
};

/// Layered random combinational logic with decaying fanin and locality-
/// biased wiring; every dangling gate becomes a primary output.
Netlist make_random_logic(const RandomLogicParams& params);

/// Appends random logic on top of an existing netlist's signals until it
/// has roughly `target_logic_gates` gates (never removes anything).
/// Newly dangling gates are marked as outputs.
void pad_with_random_logic(Netlist& nl, int target_logic_gates, Rng& rng);

// --- Composable sub-blocks (shared with iscas_analog) -----------------------

/// 9-NAND full adder appended to `nl`; returns {sum, cout}.
struct AdderBits {
  GateId sum;
  GateId cout;
};
AdderBits add_full_adder_nand(Netlist& nl, GateId a, GateId b, GateId cin,
                              const std::string& prefix);

/// 6-gate half adder (4-NAND XOR + NAND/NOT AND); returns {sum, cout}.
AdderBits add_half_adder_nand(Netlist& nl, GateId a, GateId b,
                              const std::string& prefix);

/// 4-NAND XOR2 appended to `nl`.
GateId add_xor2_nand(Netlist& nl, GateId a, GateId b, const std::string& prefix);

/// 3-NAND + 1-NOT 2:1 mux (out = sel ? b : a).
GateId add_mux2_nand(Netlist& nl, GateId a, GateId b, GateId sel,
                     const std::string& prefix);

}  // namespace mft
