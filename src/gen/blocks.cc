#include "gen/blocks.h"

#include <algorithm>

#include "util/str.h"

namespace mft {

Netlist make_c17() {
  // The canonical ISCAS85 c17: 5 inputs, 2 outputs, 6 NAND2 gates.
  Netlist nl("c17");
  const GateId g1 = nl.add_input("G1");
  const GateId g2 = nl.add_input("G2");
  const GateId g3 = nl.add_input("G3");
  const GateId g6 = nl.add_input("G6");
  const GateId g7 = nl.add_input("G7");
  const GateId g10 = nl.add_gate(GateKind::kNand, "G10", {g1, g3});
  const GateId g11 = nl.add_gate(GateKind::kNand, "G11", {g3, g6});
  const GateId g16 = nl.add_gate(GateKind::kNand, "G16", {g2, g11});
  const GateId g19 = nl.add_gate(GateKind::kNand, "G19", {g11, g7});
  const GateId g22 = nl.add_gate(GateKind::kNand, "G22", {g10, g16});
  const GateId g23 = nl.add_gate(GateKind::kNand, "G23", {g16, g19});
  nl.mark_output(g22);
  nl.mark_output(g23);
  return nl;
}

GateId add_xor2_nand(Netlist& nl, GateId a, GateId b,
                     const std::string& prefix) {
  const GateId t1 = nl.add_gate(GateKind::kNand, prefix + "_t1", {a, b});
  const GateId t2 = nl.add_gate(GateKind::kNand, prefix + "_t2", {a, t1});
  const GateId t3 = nl.add_gate(GateKind::kNand, prefix + "_t3", {b, t1});
  return nl.add_gate(GateKind::kNand, prefix + "_x", {t2, t3});
}

AdderBits add_full_adder_nand(Netlist& nl, GateId a, GateId b, GateId cin,
                              const std::string& prefix) {
  // Classic 9-NAND full adder; t1 = !(a·b) is shared by both halves.
  const GateId t1 = nl.add_gate(GateKind::kNand, prefix + "_t1", {a, b});
  const GateId t2 = nl.add_gate(GateKind::kNand, prefix + "_t2", {a, t1});
  const GateId t3 = nl.add_gate(GateKind::kNand, prefix + "_t3", {b, t1});
  const GateId x = nl.add_gate(GateKind::kNand, prefix + "_x", {t2, t3});
  const GateId t5 = nl.add_gate(GateKind::kNand, prefix + "_t5", {x, cin});
  const GateId t6 = nl.add_gate(GateKind::kNand, prefix + "_t6", {x, t5});
  const GateId t7 = nl.add_gate(GateKind::kNand, prefix + "_t7", {cin, t5});
  const GateId sum = nl.add_gate(GateKind::kNand, prefix + "_s", {t6, t7});
  const GateId cout = nl.add_gate(GateKind::kNand, prefix + "_c", {t5, t1});
  return {sum, cout};
}

AdderBits add_half_adder_nand(Netlist& nl, GateId a, GateId b,
                              const std::string& prefix) {
  const GateId t1 = nl.add_gate(GateKind::kNand, prefix + "_t1", {a, b});
  const GateId t2 = nl.add_gate(GateKind::kNand, prefix + "_t2", {a, t1});
  const GateId t3 = nl.add_gate(GateKind::kNand, prefix + "_t3", {b, t1});
  const GateId sum = nl.add_gate(GateKind::kNand, prefix + "_s", {t2, t3});
  const GateId cout = nl.add_gate(GateKind::kNot, prefix + "_c", {t1});
  return {sum, cout};
}

GateId add_mux2_nand(Netlist& nl, GateId a, GateId b, GateId sel,
                     const std::string& prefix) {
  const GateId ns = nl.add_gate(GateKind::kNot, prefix + "_ns", {sel});
  const GateId ta = nl.add_gate(GateKind::kNand, prefix + "_ta", {a, ns});
  const GateId tb = nl.add_gate(GateKind::kNand, prefix + "_tb", {b, sel});
  return nl.add_gate(GateKind::kNand, prefix + "_m", {ta, tb});
}

Netlist make_ripple_adder(int bits) {
  MFT_CHECK(bits >= 1);
  Netlist nl("adder" + std::to_string(bits));
  std::vector<GateId> a(static_cast<std::size_t>(bits));
  std::vector<GateId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    a[static_cast<std::size_t>(i)] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i)
    b[static_cast<std::size_t>(i)] = nl.add_input("b" + std::to_string(i));
  GateId carry = nl.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const AdderBits fa =
        add_full_adder_nand(nl, a[static_cast<std::size_t>(i)],
                            b[static_cast<std::size_t>(i)], carry,
                            "fa" + std::to_string(i));
    nl.mark_output(fa.sum);
    carry = fa.cout;
  }
  nl.mark_output(carry);
  return nl;
}

Netlist make_array_multiplier(int bits) {
  MFT_CHECK(bits >= 2);
  const int n = bits;
  Netlist nl("mult" + std::to_string(n) + "x" + std::to_string(n));
  std::vector<GateId> a(static_cast<std::size_t>(n));
  std::vector<GateId> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i)] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = nl.add_input("b" + std::to_string(i));

  // Partial products pp[j][i] = a_i AND b_j (NAND + NOT).
  auto pp = [&](int j, int i) -> GateId {
    const std::string base = strf("pp_%d_%d", j, i);
    const GateId nandg = nl.add_gate(
        GateKind::kNand, base + "_n",
        {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]});
    return nl.add_gate(GateKind::kNot, base, {nandg});
  };

  std::vector<GateId> result;
  // Row 0 seeds the accumulator (positions 0..n-1).
  std::vector<GateId> acc(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) acc[static_cast<std::size_t>(i)] = pp(0, i);
  result.push_back(acc.front());
  acc.erase(acc.begin());  // remaining positions 1..n-1

  for (int j = 1; j < n; ++j) {
    // acc covers positions j..j+acc.size()-1; add row j (positions j..j+n-1).
    std::vector<GateId> sums;
    sums.reserve(static_cast<std::size_t>(n) + 1);
    GateId carry = kInvalidGate;
    for (int i = 0; i < n; ++i) {
      const GateId p = pp(j, i);
      const GateId addend =
          i < static_cast<int>(acc.size()) ? acc[static_cast<std::size_t>(i)]
                                           : kInvalidGate;
      const std::string prefix = strf("add_%d_%d", j, i);
      AdderBits out{};
      if (i == 0) {
        MFT_CHECK(addend != kInvalidGate);
        out = add_half_adder_nand(nl, p, addend, prefix);
      } else if (addend != kInvalidGate) {
        out = add_full_adder_nand(nl, p, addend, carry, prefix);
      } else {
        out = add_half_adder_nand(nl, p, carry, prefix);
      }
      sums.push_back(out.sum);
      carry = out.cout;
    }
    sums.push_back(carry);  // position j+n
    result.push_back(sums.front());
    acc.assign(sums.begin() + 1, sums.end());
  }
  for (GateId g : acc) result.push_back(g);
  MFT_CHECK(static_cast<int>(result.size()) == 2 * n);
  for (GateId g : result) nl.mark_output(g);
  return nl;
}

Netlist make_parity_sec(int data_bits) {
  MFT_CHECK(data_bits >= 4);
  const int n = data_bits;
  // Number of check bits: smallest k with 2^k >= n + k + 1 (Hamming-ish).
  int k = 1;
  while ((1 << k) < n + k + 1) ++k;

  Netlist nl("sec" + std::to_string(n));
  std::vector<GateId> data(static_cast<std::size_t>(n));
  std::vector<GateId> check(static_cast<std::size_t>(k));
  for (int i = 0; i < n; ++i)
    data[static_cast<std::size_t>(i)] = nl.add_input("d" + std::to_string(i));
  for (int i = 0; i < k; ++i)
    check[static_cast<std::size_t>(i)] = nl.add_input("c" + std::to_string(i));

  // Balanced XOR2 reduction tree (the real c499 is multi-level XOR too;
  // a single wide variadic XOR cell would have unrealistic drive effort).
  auto xor_tree = [&](std::vector<GateId> layer, const std::string& base) {
    int lvl = 0;
    while (layer.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
        next.push_back(nl.add_gate(GateKind::kXor,
                                   strf("%s_%d_%zu", base.c_str(), lvl, i),
                                   {layer[i], layer[i + 1]}));
      if (layer.size() % 2) next.push_back(layer.back());
      layer = std::move(next);
      ++lvl;
    }
    return layer.front();
  };

  // Syndrome bit s_j = parity of data bits whose (1-based Hamming position)
  // has bit j set, XORed with the received check bit.
  std::vector<GateId> syndrome(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    std::vector<GateId> members{check[static_cast<std::size_t>(j)]};
    for (int i = 0; i < n; ++i)
      if (((i + 1) >> j) & 1) members.push_back(data[static_cast<std::size_t>(i)]);
    syndrome[static_cast<std::size_t>(j)] =
        xor_tree(std::move(members), "syn" + std::to_string(j));
  }
  // Decode: flip_i = AND over syndrome bits matching position i+1, with
  // complemented syndrome bits where the position bit is 0.
  std::vector<GateId> nsyn(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j)
    nsyn[static_cast<std::size_t>(j)] = nl.add_gate(
        GateKind::kNot, "nsyn" + std::to_string(j),
        {syndrome[static_cast<std::size_t>(j)]});
  for (int i = 0; i < n; ++i) {
    std::vector<GateId> terms;
    for (int j = 0; j < k; ++j)
      terms.push_back((((i + 1) >> j) & 1)
                          ? syndrome[static_cast<std::size_t>(j)]
                          : nsyn[static_cast<std::size_t>(j)]);
    const GateId flip =
        nl.add_gate(GateKind::kAnd, "flip" + std::to_string(i), std::move(terms));
    const GateId corrected = nl.add_gate(
        GateKind::kXor, "o" + std::to_string(i),
        {data[static_cast<std::size_t>(i)], flip});
    nl.mark_output(corrected);
  }
  return nl;
}

Netlist make_mux_tree(int sel_bits) {
  MFT_CHECK(sel_bits >= 1 && sel_bits <= 10);
  Netlist nl("mux" + std::to_string(1 << sel_bits));
  std::vector<GateId> sel(static_cast<std::size_t>(sel_bits));
  for (int i = 0; i < sel_bits; ++i)
    sel[static_cast<std::size_t>(i)] = nl.add_input("s" + std::to_string(i));
  std::vector<GateId> layer(static_cast<std::size_t>(1 << sel_bits));
  for (int i = 0; i < (1 << sel_bits); ++i)
    layer[static_cast<std::size_t>(i)] = nl.add_input("d" + std::to_string(i));
  for (int level = 0; level < sel_bits; ++level) {
    std::vector<GateId> next(layer.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] = add_mux2_nand(nl, layer[2 * i], layer[2 * i + 1],
                              sel[static_cast<std::size_t>(level)],
                              strf("m_%d_%zu", level, i));
    layer = std::move(next);
  }
  nl.mark_output(layer.front());
  return nl;
}

Netlist make_comparator(int bits) {
  MFT_CHECK(bits >= 1);
  Netlist nl("cmp" + std::to_string(bits));
  std::vector<GateId> a(static_cast<std::size_t>(bits));
  std::vector<GateId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    a[static_cast<std::size_t>(i)] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i)
    b[static_cast<std::size_t>(i)] = nl.add_input("b" + std::to_string(i));

  // eq_i = !(a_i ^ b_i), gt chain: gt_i = a_i·!b_i + eq_i·gt_{i-1}.
  GateId gt = kInvalidGate;
  std::vector<GateId> eqs;
  for (int i = 0; i < bits; ++i) {
    const std::string p = "bit" + std::to_string(i);
    const GateId x = add_xor2_nand(nl, a[static_cast<std::size_t>(i)],
                                   b[static_cast<std::size_t>(i)], p + "_x");
    const GateId eq = nl.add_gate(GateKind::kNot, p + "_eq", {x});
    eqs.push_back(eq);
    const GateId nb =
        nl.add_gate(GateKind::kNot, p + "_nb", {b[static_cast<std::size_t>(i)]});
    const GateId anb = nl.add_gate(GateKind::kNand, p + "_anb",
                                   {a[static_cast<std::size_t>(i)], nb});
    if (gt == kInvalidGate) {
      gt = nl.add_gate(GateKind::kNot, p + "_gt", {anb});
    } else {
      const GateId keep = nl.add_gate(GateKind::kNand, p + "_keep", {eq, gt});
      gt = nl.add_gate(GateKind::kNand, p + "_gt", {anb, keep});
    }
  }
  // Equality AND tree built from NAND/NOT pairs.
  std::vector<GateId> layer = std::move(eqs);
  int lvl = 0;
  while (layer.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string p = strf("eqt_%d_%zu", lvl, i);
      const GateId nd =
          nl.add_gate(GateKind::kNand, p + "_n", {layer[i], layer[i + 1]});
      next.push_back(nl.add_gate(GateKind::kNot, p, {nd}));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
    ++lvl;
  }
  nl.mark_output(layer.front());  // a == b
  nl.mark_output(gt);             // a > b
  return nl;
}

Netlist make_alu(int bits) {
  MFT_CHECK(bits >= 1);
  Netlist nl("alu" + std::to_string(bits));
  std::vector<GateId> a(static_cast<std::size_t>(bits));
  std::vector<GateId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    a[static_cast<std::size_t>(i)] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i)
    b[static_cast<std::size_t>(i)] = nl.add_input("b" + std::to_string(i));
  const GateId op0 = nl.add_input("op0");
  const GateId op1 = nl.add_input("op1");
  GateId carry = nl.add_input("cin");

  for (int i = 0; i < bits; ++i) {
    const std::string p = "s" + std::to_string(i);
    const GateId ai = a[static_cast<std::size_t>(i)];
    const GateId bi = b[static_cast<std::size_t>(i)];
    const AdderBits fa = add_full_adder_nand(nl, ai, bi, carry, p + "_fa");
    carry = fa.cout;
    const GateId andn = nl.add_gate(GateKind::kNand, p + "_andn", {ai, bi});
    const GateId andg = nl.add_gate(GateKind::kNot, p + "_and", {andn});
    const GateId orn = nl.add_gate(GateKind::kNor, p + "_orn", {ai, bi});
    const GateId org = nl.add_gate(GateKind::kNot, p + "_or", {orn});
    const GateId xorg = add_xor2_nand(nl, ai, bi, p + "_xor");
    // Result mux: op1 chooses between {add,and} and {or,xor}; op0 within.
    const GateId m0 = add_mux2_nand(nl, fa.sum, andg, op0, p + "_m0");
    const GateId m1 = add_mux2_nand(nl, org, xorg, op0, p + "_m1");
    const GateId out = add_mux2_nand(nl, m0, m1, op1, p + "_out");
    nl.mark_output(out);
  }
  nl.mark_output(carry);
  return nl;
}

namespace {

GateKind random_kind(Rng& rng) {
  // Weighted toward NAND/NOR as in the ISCAS85 suite.
  const int roll = rng.uniform_int(0, 9);
  if (roll < 4) return GateKind::kNand;
  if (roll < 7) return GateKind::kNor;
  if (roll < 8) return GateKind::kNot;
  if (roll < 9) return GateKind::kAnd;
  return GateKind::kOr;
}

}  // namespace

void pad_with_random_logic(Netlist& nl, int target_logic_gates, Rng& rng) {
  if (nl.num_logic_gates() >= target_logic_gates) return;
  // Candidate signals to draw fanins from, freshest last.
  std::vector<GateId> pool;
  for (GateId g = 0; g < nl.num_gates(); ++g) pool.push_back(g);
  int serial = 0;
  while (nl.num_logic_gates() < target_logic_gates) {
    const GateKind kind = random_kind(rng);
    const int arity = kind == GateKind::kNot ? 1 : rng.decaying_int(2, 4, 0.3);
    std::vector<GateId> fanins;
    for (int i = 0; i < arity; ++i) {
      // Locality bias: prefer recent signals, fall back anywhere.
      const std::size_t window = std::min<std::size_t>(pool.size(), 64);
      const std::size_t idx = rng.flip(0.7)
                                  ? pool.size() - 1 - rng.index(window)
                                  : rng.index(pool.size());
      const GateId cand = pool[idx];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    if (fanins.empty()) continue;
    const GateId g =
        nl.add_gate(kind, "rnd" + std::to_string(serial++), std::move(fanins));
    pool.push_back(g);
  }
  // Close the interface: everything still dangling becomes a PO.
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (!nl.is_input(g) && !nl.is_output(g) && nl.fanouts(g).empty())
      nl.mark_output(g);
}

Netlist make_random_logic(const RandomLogicParams& params) {
  MFT_CHECK(params.num_inputs >= 2 && params.num_gates >= 1);
  Rng rng(params.seed);
  Netlist nl("rnd" + std::to_string(params.num_gates));
  for (int i = 0; i < params.num_inputs; ++i)
    nl.add_input("i" + std::to_string(i));
  pad_with_random_logic(nl, params.num_gates, rng);
  return nl;
}

}  // namespace mft
