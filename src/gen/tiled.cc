#include "gen/tiled.h"

#include "gen/blocks.h"
#include "util/check.h"
#include "util/str.h"

namespace mft {

int tiled_datapath_gates(const TiledDatapathParams& p) {
  // One 9-NAND full adder per bit per tile.
  return p.lanes * p.stages * p.bits * 9;
}

Netlist make_tiled_datapath(const TiledDatapathParams& p) {
  MFT_CHECK(p.lanes >= 1 && p.stages >= 1 && p.bits >= 1);
  Netlist nl(strf("tiled%dx%dx%d%s", p.lanes, p.stages, p.bits,
                  p.mesh ? "" : "_nomesh"));

  // value[t] = current running word of lane t; carry[t] = its carry chain.
  std::vector<std::vector<GateId>> value(static_cast<std::size_t>(p.lanes));
  std::vector<GateId> carry(static_cast<std::size_t>(p.lanes));
  for (int t = 0; t < p.lanes; ++t) {
    carry[static_cast<std::size_t>(t)] = nl.add_input(strf("l%d_cin", t));
    for (int i = 0; i < p.bits; ++i)
      value[static_cast<std::size_t>(t)].push_back(
          nl.add_input(strf("l%d_a%d", t, i)));
  }
  // Stage-0 operands are fresh inputs; later stages consume the mesh.
  std::vector<std::vector<GateId>> operand(static_cast<std::size_t>(p.lanes));
  for (int t = 0; t < p.lanes; ++t)
    for (int i = 0; i < p.bits; ++i)
      operand[static_cast<std::size_t>(t)].push_back(
          nl.add_input(strf("l%d_b%d", t, i)));

  for (int s = 0; s < p.stages; ++s) {
    std::vector<std::vector<GateId>> next(static_cast<std::size_t>(p.lanes));
    for (int t = 0; t < p.lanes; ++t) {
      GateId c = carry[static_cast<std::size_t>(t)];
      for (int i = 0; i < p.bits; ++i) {
        const AdderBits fa = add_full_adder_nand(
            nl, value[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
            operand[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
            c, strf("s%d_l%d_fa%d", s, t, i));
        c = fa.cout;
        next[static_cast<std::size_t>(t)].push_back(fa.sum);
      }
      carry[static_cast<std::size_t>(t)] = c;
    }
    // Next stage's operand for lane t: the word lane t−1 just produced
    // (lane 0 wraps to the last lane — still a DAG, the operand is from
    // stage s and consumed at stage s+1). Without mesh a lane feeds only
    // itself with its own word (a squaring chain).
    for (int t = 0; t < p.lanes; ++t) {
      const int from = p.mesh ? (t + p.lanes - 1) % p.lanes : t;
      operand[static_cast<std::size_t>(t)] =
          next[static_cast<std::size_t>(from)];
    }
    value = std::move(next);
  }

  for (int t = 0; t < p.lanes; ++t) {
    for (int i = 0; i < p.bits; ++i)
      nl.mark_output(
          value[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]);
    nl.mark_output(carry[static_cast<std::size_t>(t)]);
  }
  return nl;
}

}  // namespace mft
