// Deterministic retry-with-backoff policy for the streaming engine.
//
// A RetryPolicy lets the runner re-enqueue a job that failed with a
// *transient* status — a worker died under it, or an internal/injected
// fault tripped — up to max_attempts total attempts. The backoff before
// attempt n (n >= 2) is
//
//   backoff_base * 2^(n-2) * jitter(seed, n)
//
// with jitter a multiplier in [0.5, 1.5) derived deterministically from
// the job's seed via splitmix64. The job's seed and ticket never change
// across attempts, so a retried success is bit-identical to the result a
// fault-free run would have produced, and two runs of the same workload
// schedule their retries identically.
#pragma once

#include <cstdint>

#include "util/status.h"

namespace mft {

struct RetryPolicy {
  /// Total attempts a job may consume, first run included; <= 1 disables
  /// retry (the default — batch and bit-identity suites see no change).
  int max_attempts = 1;
  /// Backoff in seconds before the first retry; doubles per further
  /// attempt. 0 retries immediately.
  double backoff_base = 0.0;
  /// Scale each backoff by the deterministic [0.5, 1.5) jitter factor so
  /// a burst of same-fault retries decorrelates without losing
  /// reproducibility. Off: the exponential schedule alone.
  bool jitter_from_seed = true;
};

/// True for the statuses worth re-running: the failure says nothing about
/// the job itself, so a clean attempt can succeed (bit-identically —
/// seed and ticket are reused). Budget trips, cancellation, shedding,
/// admission rejections, and input errors are final by design, and kHung
/// is not retried — a job that ignored its AbortToken once would eat
/// another worker.
inline bool retryable_status(EngineStatus s) {
  return s == EngineStatus::kWorkerDied || s == EngineStatus::kInternal;
}

/// Backoff in seconds to wait before `attempt` (2 = first retry). A pure
/// function of (policy, seed, attempt); never negative.
inline double retry_backoff_seconds(const RetryPolicy& policy,
                                    std::uint64_t seed, int attempt) {
  if (attempt < 2 || policy.backoff_base <= 0) return 0.0;
  double backoff = policy.backoff_base;
  for (int i = 2; i < attempt; ++i) backoff *= 2.0;
  if (policy.jitter_from_seed) {
    // splitmix64 of (seed, attempt) -> uniform in [0.5, 1.5).
    std::uint64_t z =
        seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
    backoff *= 0.5 + u;
  }
  return backoff;
}

}  // namespace mft
