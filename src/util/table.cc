#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace mft {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MFT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MFT_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? " | " : "| ") << row[c]
         << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "-+-" : "+-") << std::string(width[c], '-');
  os << "-+\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mft
