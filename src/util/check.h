// Lightweight runtime-check macros used across the library.
//
// MFT_CHECK(cond)        — always-on invariant check; throws mft::CheckError.
// MFT_CHECK_MSG(cond, m) — same, with a streamed message.
// MFT_DCHECK(cond)       — debug-only (compiled out under NDEBUG).
//
// We throw instead of aborting so that tests can assert on failures and so
// that library users get a catchable error type.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mft {

/// Error thrown when an MFT_CHECK fails. Carries file:line context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mft

#define MFT_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::mft::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MFT_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream mft_check_os_;                              \
      mft_check_os_ << msg;                                          \
      ::mft::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  mft_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define MFT_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MFT_DCHECK(cond) MFT_CHECK(cond)
#endif
