// Structured error taxonomy for the sizing engine.
//
// EngineStatus replaces bare error strings in JobResult and in the throws
// that cross the engine boundary, so a service front-end (and the batch
// JSON) can react to *what* failed rather than parsing a message.
#pragma once

#include <stdexcept>
#include <string>

namespace mft {

/// Machine-readable outcome code attached to every JobResult and to
/// EngineError throws. kOk is the only success code; a degraded result
/// (deadline/step budget tripped with a feasible best-so-far iterate)
/// still reports ok=true but carries the budget code that tripped.
enum class EngineStatus {
  kOk = 0,
  kInvalidInput,      // malformed netlist / bad job parameters / bad request
  kCanceled,          // canceled via StreamingRunner::cancel or shutdown
  kDeadlineExpired,   // wall-clock deadline tripped mid-solve
  kStepBudget,        // virtual-step budget tripped mid-solve
  kWorkerDied,        // worker thread failed outside the job body
  kShardFailed,       // sharded solve exhausted retry + degrade paths
  kShed,              // load shedding: deadline already unmeetable at dispatch
  kRejected,          // admission control refused the request up front
  kHung,              // watchdog escalation: worker stuck past hang_timeout
                      // and did not honor its AbortToken within the grace
  kInternal,          // unclassified exception inside the job body
};

/// Stable lower-case token for JSON / logs.
inline const char* to_string(EngineStatus s) {
  switch (s) {
    case EngineStatus::kOk: return "ok";
    case EngineStatus::kInvalidInput: return "invalid_input";
    case EngineStatus::kCanceled: return "canceled";
    case EngineStatus::kDeadlineExpired: return "deadline_expired";
    case EngineStatus::kStepBudget: return "step_budget";
    case EngineStatus::kWorkerDied: return "worker_died";
    case EngineStatus::kShardFailed: return "shard_failed";
    case EngineStatus::kShed: return "shed";
    case EngineStatus::kRejected: return "rejected";
    case EngineStatus::kHung: return "hung";
    case EngineStatus::kInternal: return "internal";
  }
  return "internal";
}

/// Exception carrying an EngineStatus. Thrown by the parsing and shard
/// layers; the streaming runner maps it back into JobResult::status.
class EngineError : public std::runtime_error {
 public:
  EngineError(EngineStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}

  EngineStatus status() const { return status_; }

 private:
  EngineStatus status_;
};

}  // namespace mft
