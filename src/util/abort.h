// Cooperative abort token checked at pass/sweep/round checkpoints.
//
// One token is owned by one job. The owner thread calls step() at natural
// checkpoints (TILOS bump, W-phase sweep, D-phase iteration, shard round);
// any thread may call request_cancel(). The first budget that fires latches
// its status sticky, so the pipeline unwinds with a single consistent
// reason. With no deadline/budget armed and no cancel requested, step() is
// a relaxed atomic load plus two integer compares — cheap enough to leave
// in release builds, and it never perturbs numerics.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/status.h"
#include "util/stopwatch.h"

namespace mft {

/// Cancellation + budget latch shared between a job's submitter and the
/// worker running it. Thread-safety: request_cancel() and canceled() are
/// safe from any thread; everything else is owner-thread only.
class AbortToken {
 public:
  AbortToken() = default;

  /// Arm a wall-clock deadline, measured from now. Non-positive disarms.
  void arm_deadline(double seconds) {
    deadline_seconds_ = seconds > 0 ? seconds : 0;
    clock_.reset();
  }

  /// Arm a virtual-step budget: the token trips after `steps` checkpoint
  /// visits, independent of wall clock (deterministic for tests).
  /// Non-positive disarms.
  void arm_steps(std::int64_t steps) { max_steps_ = steps > 0 ? steps : 0; }

  /// Request cooperative cancellation. Safe from any thread; the running
  /// job observes it at its next checkpoint.
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool canceled() const { return cancel_.load(std::memory_order_relaxed); }

  /// Attach a heartbeat counter: every step() additionally bumps `*beat`
  /// (relaxed), so a supervisor watching the counter can tell a slow job
  /// (beats advance) from a stuck one (beats stall). The counter must
  /// outlive the token or be detached (attach_heartbeat(nullptr)) first.
  /// Owner-thread only, like arming.
  void attach_heartbeat(std::atomic<std::int64_t>* beat) { beat_ = beat; }

  /// Checkpoint: returns true (and latches the reason) once any armed
  /// budget has tripped. Cancel wins over the step budget, which wins over
  /// the deadline, so concurrent trips resolve deterministically.
  bool step() {
    if (beat_ != nullptr) beat_->fetch_add(1, std::memory_order_relaxed);
    if (tripped_ != EngineStatus::kOk) return true;
    if (cancel_.load(std::memory_order_relaxed)) {
      tripped_ = EngineStatus::kCanceled;
      return true;
    }
    ++steps_;
    if (max_steps_ > 0 && steps_ > max_steps_) {
      tripped_ = EngineStatus::kStepBudget;
      return true;
    }
    if (deadline_seconds_ > 0 && clock_.seconds() > deadline_seconds_) {
      tripped_ = EngineStatus::kDeadlineExpired;
      return true;
    }
    return false;
  }

  /// Reason the token tripped, or kOk if it has not.
  EngineStatus tripped() const { return tripped_; }

  /// Checkpoints visited so far (owner thread).
  std::int64_t steps() const { return steps_; }

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<std::int64_t>* beat_ = nullptr;
  EngineStatus tripped_ = EngineStatus::kOk;
  std::int64_t steps_ = 0;
  std::int64_t max_steps_ = 0;
  double deadline_seconds_ = 0;
  Stopwatch clock_;
};

}  // namespace mft
