// Reusable inner-loop parallelism substrate: a ThreadArena owns a small
// fixed set of worker threads and runs statically-partitioned parallel-for
// regions over [0, n).
//
// Built for the level-parallel STA/W-phase sweeps, whose regions are many
// and tiny (one per levelization level), so the design goals are
//
//  - determinism: the partition of [0, n) into contiguous chunks is a pure
//    function of (n, threads, grain) — never of scheduling. Callers that
//    need bit-reproducible results additionally keep per-chunk state
//    per *thread index* and merge with an order-fixed rule.
//  - near-zero dispatch cost: workers spin briefly, then yield, then sleep
//    on a condition variable; the dispatching thread participates (chunk 0)
//    and spin-waits for completion. On an idle multi-core host a dispatch
//    is a few hundred nanoseconds; on an oversubscribed single core the
//    yields keep forward progress.
//  - zero cost when unused: with threads() == 1, or when n is below the
//    grain, the body runs inline on the caller — the exact sequential code
//    path, no atomics touched.
//
// One arena belongs to one owning thread at a time; regions must not nest
// and the body must not re-enter the arena. The engine layer gives each of
// its batch workers its own arena (engine/runner.cc).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace mft {

class ThreadArena {
 public:
  /// Spawns `threads - 1` workers (the owning thread is the remaining one).
  explicit ThreadArena(int threads = 1) : threads_(threads < 1 ? 1 : threads) {
    if (threads_ > 1) slots_.reset(new Slot[static_cast<std::size_t>(threads_ - 1)]);
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
      workers_.emplace_back([this, w] { worker_main(w); });
  }

  ~ThreadArena() {
    if (!workers_.empty()) {
      stop_.store(true, std::memory_order_seq_cst);
      for (int w = 1; w < threads_; ++w)
        slots_[static_cast<std::size_t>(w - 1)].go.store(
            kStopEpoch, std::memory_order_seq_cst);
      {
        std::lock_guard<std::mutex> lock(mu_);
        cv_.notify_all();
      }
      for (std::thread& t : workers_) t.join();
    }
  }

  ThreadArena(const ThreadArena&) = delete;
  ThreadArena& operator=(const ThreadArena&) = delete;

  int threads() const { return threads_; }

  /// Runs body(thread, begin, end) over a static partition of [0, n) into
  /// contiguous chunks and blocks until all chunks are done. `grain` is the
  /// minimum chunk size: fewer than 2*grain elements (or threads() == 1)
  /// run inline on the caller as body(0, 0, n). Thread indices are dense in
  /// [0, chunks) with the caller always executing chunk 0.
  template <typename Body>
  void parallel_for(int n, int grain, Body&& body) {
    if (n <= 0) return;
    const int chunks = plan_chunks(n, grain);
    if (chunks <= 1) {
      body(0, 0, n);
      return;
    }
    using Plain = std::remove_reference_t<Body>;
    job_.ctx = const_cast<void*>(static_cast<const void*>(&body));
    job_.invoke = [](void* ctx, int thread, int begin, int end) {
      (*static_cast<Plain*>(ctx))(thread, begin, end);
    };
    job_.n = n;
    job_.chunks = chunks;
    dispatch();
  }

 private:
  struct Job {
    void* ctx = nullptr;
    void (*invoke)(void*, int, int, int) = nullptr;
    int n = 0;
    int chunks = 0;
  };

  /// One cache line per worker: the per-worker epoch it should pick up.
  /// Publishing work only to the assigned workers (instead of one shared
  /// epoch) is what makes reading `job_` race-free — an unassigned worker's
  /// slot never advances, so it never looks at a job being rewritten.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> go{0};
  };

  static constexpr std::uint64_t kStopEpoch = ~std::uint64_t{0};
  static constexpr int kSpinIters = 2048;
  static constexpr int kYieldIters = 64;

  static int chunk_bound(int n, int chunks, int i) {
    return static_cast<int>(static_cast<std::int64_t>(n) * i / chunks);
  }

  int plan_chunks(int n, int grain) const {
    if (threads_ <= 1) return 1;
    const int by_grain = grain > 0 ? n / grain : threads_;
    return by_grain < 1 ? 1 : (by_grain < threads_ ? by_grain : threads_);
  }

  void dispatch() {
    const std::uint64_t e = ++epoch_;  // only the owning thread writes this
    pending_.store(job_.chunks - 1, std::memory_order_relaxed);
    for (int w = 1; w < job_.chunks; ++w)
      slots_[static_cast<std::size_t>(w - 1)].go.store(
          e, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    job_.invoke(job_.ctx, 0, 0, chunk_bound(job_.n, job_.chunks, 1));
    // Completion spin: regions are short, and any still-running worker is
    // actively executing its chunk, so yielding is enough to let it finish
    // even on an oversubscribed host.
    int spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0)
      if (++spins > kSpinIters) std::this_thread::yield();
  }

  void worker_main(int w) {
    std::atomic<std::uint64_t>& go = slots_[static_cast<std::size_t>(w - 1)].go;
    std::uint64_t seen = 0;
    while (true) {
      const std::uint64_t e = wait_for_work(go, seen);
      if (stop_.load(std::memory_order_acquire)) return;
      seen = e;
      // Safe: our slot advanced, so the owner published this job for us and
      // cannot rewrite it until we decrement pending_.
      const Job job = job_;
      job.invoke(job.ctx, w, chunk_bound(job.n, job.chunks, w),
                 chunk_bound(job.n, job.chunks, w + 1));
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  std::uint64_t wait_for_work(std::atomic<std::uint64_t>& go,
                              std::uint64_t seen) {
    for (int i = 0; i < kSpinIters; ++i) {
      const std::uint64_t e = go.load(std::memory_order_acquire);
      if (e != seen) return e;
      cpu_relax();
    }
    for (int i = 0; i < kYieldIters; ++i) {
      const std::uint64_t e = go.load(std::memory_order_acquire);
      if (e != seen) return e;
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    // The predicate loads must be seq_cst: they form a Dekker pair with
    // dispatch()'s [go.store; sleepers_.load] — the single total order
    // guarantees either the dispatcher sees our sleepers_ increment (and
    // notifies under the mutex) or we see its go store (and never sleep).
    // Acquire alone would permit both sides to miss each other on weakly
    // ordered hardware, sleeping through the only wakeup.
    cv_.wait(lock, [&] {
      return go.load(std::memory_order_seq_cst) != seen ||
             stop_.load(std::memory_order_seq_cst);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    return go.load(std::memory_order_acquire);
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  int threads_ = 1;
  Job job_;
  std::uint64_t epoch_ = 0;
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};
  std::unique_ptr<Slot[]> slots_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace mft
