// Crash-durable append-only record log (write-ahead journal).
//
// The sizing daemon journals every accepted submit and every terminal
// result so a process that dies mid-burst can be restarted on the same
// file and re-admit exactly the journaled-but-unfinished requests.
// Payloads are opaque bytes (the daemon writes flat JSON lines); the
// journal only adds framing and durability:
//
//   MFTJ <len> <crc32-hex8> <payload>\n
//
// one record per line, `len` the payload byte count in decimal, the CRC
// (IEEE 802.3 polynomial) over the payload alone. Every append() is
// fsync'd before it returns — a record handed back to the caller is on
// disk. replay() walks the file from the start and returns the longest
// valid prefix of records: a torn tail (partial write from a crash, a
// truncated file) or a CRC mismatch stops the walk without error, because
// after a kill -9 a damaged last record is the *expected* state, not a
// corruption to die over. rewrite() (compaction) replaces the file
// atomically via tmp-write + rename.
//
// Thread-safety: none — callers guard the Journal with their own lock
// (the daemon uses its session mutex). replay()/rewrite() are static and
// touch only their path argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mft {

class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending (created if missing). Throws EngineError
  /// (kInternal) when the file cannot be opened.
  void open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  void close();

  /// Appends one framed record and fsyncs it. Throws EngineError
  /// (kInternal) on a closed journal, a write failure, or an injected
  /// fault at site "journal.append".
  void append(const std::string& payload);

  const std::string& path() const { return path_; }
  std::int64_t appends() const { return appends_; }
  std::int64_t fsyncs() const { return fsyncs_; }
  /// Current on-disk size in bytes: the file size found at open() plus
  /// every frame appended since. Drives size-triggered compaction
  /// (rotation) in the daemon; 0 when closed.
  std::int64_t bytes() const { return bytes_; }

  /// Reads every intact record from `path` in order. A missing file is an
  /// empty journal. A torn or CRC-corrupt tail ends the walk — `*torn`
  /// (optional) reports whether trailing bytes were discarded. Throws
  /// EngineError only for an injected fault at site "journal.replay" or a
  /// file that exists but cannot be read.
  static std::vector<std::string> replay(const std::string& path,
                                         bool* torn = nullptr);

  /// Atomically replaces `path` with a journal holding exactly `records`
  /// (compaction): writes path + ".tmp", fsyncs, renames over `path`.
  static void rewrite(const std::string& path,
                      const std::vector<std::string>& records);

  /// CRC32 (IEEE) of `bytes` — exposed for the framing tests.
  static std::uint32_t crc32(const std::string& bytes);

 private:
  int fd_ = -1;
  std::string path_;
  std::int64_t appends_ = 0;
  std::int64_t fsyncs_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace mft
