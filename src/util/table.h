// Plain-text table writer used by the benchmark binaries to print
// paper-style tables (Table 1, Fig. 7 series) to stdout and CSV.
#pragma once

#include <string>
#include <vector>

namespace mft {

/// Accumulates rows of string cells and renders them as an aligned
/// fixed-width text table, or as CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render an aligned, pipe-separated text table.
  std::string to_text() const;

  /// Render RFC-4180-ish CSV (no quoting of commas needed for our data).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mft
