#include "util/str.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mft {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim,
                               bool keep_empty) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(delim, pos);
    if (next == std::string_view::npos) next = s.size();
    std::string_view piece = trim(s.substr(pos, next - pos));
    if (keep_empty || !piece.empty()) out.emplace_back(piece);
    pos = next + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace mft
