#include "util/fault.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace mft {

namespace {

/// splitmix64 finalizer — decorrelates (seed, hit) pairs for arm_random.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Plan {
  // Deterministic nth-hit window: fire on hits [nth, nth + times).
  std::int64_t nth = 0;
  std::int64_t times = 0;
  // Probabilistic mode (nth == 0): fire when hash(seed, hit) < p.
  double p = 0;
  std::uint64_t seed = 0;
  std::int64_t hits = 0;
  // Hang mode: a firing hit blocks inside the fault point until the site
  // is disarmed, instead of throwing.
  bool hang = false;
};

struct State {
  mutable std::mutex mu;
  std::map<std::string, Plan> plans;
};

State& state() {
  static State* s = new State;
  return *s;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector* fi = new FaultInjector;
  return *fi;
}

FaultInjector::FaultInjector() {
  // MFT_FAULTS="site:nth[xTIMES],site2:nth2,..."
  const char* env = std::getenv("MFT_FAULTS");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) continue;
    std::string site = entry.substr(0, colon);
    std::string rest = entry.substr(colon + 1);
    std::int64_t nth = 1, times = 1;
    std::size_t x = rest.find('x');
    try {
      if (x == std::string::npos) {
        nth = std::stoll(rest);
      } else {
        nth = std::stoll(rest.substr(0, x));
        times = std::stoll(rest.substr(x + 1));
      }
    } catch (const std::exception&) {
      continue;  // malformed entry: ignore rather than abort startup
    }
    arm(site, nth, times);
  }
}

void FaultInjector::arm(const std::string& site, std::int64_t nth,
                        std::int64_t times) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Plan& plan = s.plans[site];
  plan = Plan{};
  plan.nth = nth < 1 ? 1 : nth;
  plan.times = times < 0 ? 0 : times;
  armed_.store(1, std::memory_order_relaxed);
}

void FaultInjector::arm_random(const std::string& site, double p,
                               std::uint64_t seed) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Plan& plan = s.plans[site];
  plan = Plan{};
  plan.p = p < 0 ? 0 : (p > 1 ? 1 : p);
  plan.seed = seed;
  armed_.store(1, std::memory_order_relaxed);
}

void FaultInjector::arm_hang(const std::string& site, std::int64_t nth,
                             std::int64_t times) {
  arm(site, nth, times);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plans[site].hang = true;
}

void FaultInjector::disarm(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plans.erase(site);
  armed_.store(s.plans.empty() ? 0 : 1, std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plans.clear();
  armed_.store(0, std::memory_order_relaxed);
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.plans.find(site);
  return it == s.plans.end() ? 0 : it->second.hits;
}

bool FaultInjector::should_fire(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.plans.find(site);
  if (it == s.plans.end()) return false;
  Plan& plan = it->second;
  const std::int64_t hit = ++plan.hits;
  if (plan.nth > 0)
    return hit >= plan.nth && hit < plan.nth + plan.times;
  if (plan.p > 0) {
    const std::uint64_t h = mix64(plan.seed ^ static_cast<std::uint64_t>(hit));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < plan.p;
  }
  return false;
}

void FaultInjector::on_hit(const std::string& site) {
  bool hang = false;
  {
    // should_fire records the hit and applies the window/probability plan;
    // re-check the plan under the same lock discipline for the hang bit.
    if (!should_fire(site)) return;
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.plans.find(site);
    hang = it != s.plans.end() && it->second.hang;
  }
  if (!hang) throw FaultInjectedError(site);
  // Hang mode: spin (sleeping) until the site is disarmed, then resume the
  // caller normally — the stuck thread stays joinable once a test releases
  // it, and whatever result it eventually produces is dropped by the
  // supervisor's claim.
  for (;;) {
    {
      State& s = state();
      std::lock_guard<std::mutex> lock(s.mu);
      auto it = s.plans.find(site);
      if (it == s.plans.end() || !it->second.hang) return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace mft
