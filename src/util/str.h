// Small string helpers shared by the .bench parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mft {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; trims each piece; drops empty pieces
/// when `keep_empty` is false.
std::vector<std::string> split(std::string_view s, char delim,
                               bool keep_empty = false);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Uppercase copy (ASCII).
std::string to_upper(std::string_view s);

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...);

}  // namespace mft
