// Deterministic pseudo-random number generator for circuit generation.
//
// All generators in src/gen take an explicit seed so that every benchmark
// circuit is bit-reproducible across runs and machines. We wrap a fixed
// engine (splitmix64-seeded xoshiro-style via std::mt19937_64) rather than
// std::default_random_engine, whose definition is implementation-defined.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.h"

namespace mft {

/// Deterministic RNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    MFT_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    MFT_DCHECK(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool flip(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Geometric-ish fanin sampler: returns lo..hi with mass decaying by
  /// `decay` per step; used to mimic ISCAS fanin distributions.
  int decaying_int(int lo, int hi, double decay) {
    int v = lo;
    while (v < hi && flip(decay)) ++v;
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mft
