// Deterministic pseudo-random number generator for circuit generation.
//
// All generators in src/gen take an explicit seed so that every benchmark
// circuit is bit-reproducible across runs and machines. The engine is
// std::mt19937_64, whose output sequence the standard fully specifies —
// but the std::*_distribution adaptors are implementation-defined, so all
// sampling here is derived from raw engine output (Lemire multiply-shift
// for bounded ints, a 53-bit mantissa scale for reals). The same seed
// therefore yields the same circuit on every standard library.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.h"

namespace mft {

/// Deterministic RNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    MFT_DCHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo) + 1);
    return static_cast<int>(static_cast<std::int64_t>(lo) +
                            static_cast<std::int64_t>(bounded(range)));
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    MFT_DCHECK(n > 0);
    return static_cast<std::size_t>(bounded(n));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>(engine_() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + u * (hi - lo);
  }

  /// Bernoulli trial with probability p of returning true.
  bool flip(double p) { return uniform(0.0, 1.0) < p; }

  /// Geometric-ish fanin sampler: returns lo..hi with mass decaying by
  /// `decay` per step; used to mimic ISCAS fanin distributions.
  int decaying_int(int lo, int hi, double decay) {
    int v = lo;
    while (v < hi && flip(decay)) ++v;
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  /// Unbiased uniform draw in [0, range) — Lemire's multiply-shift with
  /// rejection, built on raw engine output only.
  std::uint64_t bounded(std::uint64_t range) {
    unsigned __int128 m =
        static_cast<unsigned __int128>(engine_()) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = -range % range;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(engine_()) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  std::mt19937_64 engine_;
};

}  // namespace mft
