#include "util/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.h"
#include "util/status.h"

namespace mft {

namespace {

constexpr const char* kMagic = "MFTJ";

/// Lazily built CRC32 (IEEE, reflected) lookup table.
const std::uint32_t* crc_table() {
  static std::uint32_t table[256];
  static bool built = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

std::string frame(const std::string& payload) {
  char head[32];
  std::snprintf(head, sizeof(head), "%s %zu %08x ", kMagic, payload.size(),
                Journal::crc32(payload));
  std::string record(head);
  record += payload;
  record += '\n';
  return record;
}

void write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw EngineError(EngineStatus::kInternal,
                        std::string("journal write failed: ") +
                            std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

std::uint32_t Journal::crc32(const std::string& bytes) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char b : bytes) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

Journal::~Journal() { close(); }

void Journal::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0)
    throw EngineError(EngineStatus::kInternal,
                      "cannot open journal '" + path +
                          "': " + std::strerror(errno));
  path_ = path;
  // O_APPEND: the end-of-file offset IS the current size.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  bytes_ = size >= 0 ? static_cast<std::int64_t>(size) : 0;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    bytes_ = 0;
  }
}

void Journal::append(const std::string& payload) {
  MFT_FAULT_POINT("journal.append");
  if (fd_ < 0)
    throw EngineError(EngineStatus::kInternal, "append on a closed journal");
  const std::string record = frame(payload);
  write_all(fd_, record.data(), record.size());
  // The durability contract: a record acknowledged to the caller has been
  // handed to the device. A crash mid-write leaves a torn tail replay()
  // discards.
  if (::fsync(fd_) == 0) ++fsyncs_;
  ++appends_;
  bytes_ += static_cast<std::int64_t>(record.size());
}

std::vector<std::string> Journal::replay(const std::string& path, bool* torn) {
  MFT_FAULT_POINT("journal.replay");
  if (torn != nullptr) *torn = false;
  std::vector<std::string> records;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return records;  // missing file == empty journal
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  const std::string magic = std::string(kMagic) + ' ';
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // Header: "MFTJ <len> <crc8> ". Any deviation — including a header cut
    // short by a crash — is a torn tail: keep what parsed so far.
    if (bytes.compare(pos, magic.size(), magic) != 0) break;
    std::size_t p = pos + magic.size();
    std::size_t len = 0;
    bool have_len = false;
    while (p < bytes.size() && bytes[p] >= '0' && bytes[p] <= '9') {
      len = len * 10 + static_cast<std::size_t>(bytes[p] - '0');
      ++p;
      have_len = true;
    }
    if (!have_len || p >= bytes.size() || bytes[p] != ' ') break;
    ++p;
    if (p + 8 > bytes.size()) break;
    std::uint32_t want_crc = 0;
    bool crc_ok = true;
    for (std::size_t i = 0; i < 8; ++i) {
      const char c = bytes[p + i];
      std::uint32_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        digit = static_cast<std::uint32_t>(c - 'a') + 10;
      else {
        crc_ok = false;
        break;
      }
      want_crc = (want_crc << 4) | digit;
    }
    if (!crc_ok) break;
    p += 8;
    if (p >= bytes.size() || bytes[p] != ' ') break;
    ++p;
    if (p + len + 1 > bytes.size()) break;  // payload or newline torn off
    if (bytes[p + len] != '\n') break;
    std::string payload = bytes.substr(p, len);
    if (crc32(payload) != want_crc) break;  // corrupt record: stop here
    records.push_back(std::move(payload));
    pos = p + len + 1;
  }
  if (torn != nullptr && pos < bytes.size()) *torn = true;
  return records;
}

void Journal::rewrite(const std::string& path,
                      const std::vector<std::string>& records) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
      throw EngineError(EngineStatus::kInternal,
                        "cannot open journal tmp '" + tmp +
                            "': " + std::strerror(errno));
    try {
      for (const std::string& payload : records) {
        const std::string record = frame(payload);
        write_all(fd, record.data(), record.size());
      }
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw EngineError(EngineStatus::kInternal,
                      "journal compaction rename failed: " +
                          std::string(std::strerror(errno)));
}

}  // namespace mft
