// Wall-clock stopwatch used by the benchmark harnesses to report CPU-time
// columns (Table 1) and scaling curves.
#pragma once

#include <chrono>

namespace mft {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mft
