// Deterministic fault-injection harness.
//
// Named injection sites are compiled into the library permanently; when the
// injector is disarmed (the default) each site costs one relaxed atomic
// load. Tests (or the MFT_FAULTS environment variable) arm a site to throw
// FaultInjectedError on a specific hit, so failure paths — worker death,
// shard retry, context-pool faults — can be soaked reproducibly.
//
//   MFT_FAULTS="shard.extract:2,stream.worker:1x3"
//
// arms "shard.extract" to fire on its 2nd hit and "stream.worker" to fire
// on hits 1..3. Hit counting is global across threads and deterministic
// whenever the per-site hit order is (e.g. single worker, or sites reached
// once per job).
//
// Besides throwing, a site can be armed to *hang* (arm_hang): the hit
// spins inside the fault point until the site is disarmed, modeling a
// worker silently stuck in a loop — the deterministic driver for the
// watchdog/kHung escalation tests.
//
// Named sites compiled in today:
//   stream.worker    worker loop, outside the job body (→ kWorkerDied)
//   stream.context   per-worker context acquisition (→ kWorkerDied)
//   stream.execute   inside the job body (structured kInternal result)
//   stream.heartbeat worker heartbeat publication, outside the job body
//                    (→ kWorkerDied)
//   flow.solve       inner flow solve (structured kInternal result)
//   shard.extract    shard extraction (retried once, then folded back)
//   daemon.parse     daemon request parsing (structured error response)
//   daemon.accept    daemon admission, pre-submit (structured error
//                    response; the engine never sees the job)
//   journal.append   journal record append (submit fails structured; the
//                    daemon survives and the log keeps its valid prefix)
//   journal.replay   journal replay on daemon restart (recovery skipped,
//                    service continues on an empty slate)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace mft {

/// Error thrown at an armed fault site. Carries the site name so tests can
/// assert exactly which injection fired.
class FaultInjectedError : public EngineError {
 public:
  explicit FaultInjectedError(const std::string& site)
      : EngineError(EngineStatus::kInternal,
                    "injected fault at site '" + site + "'"),
        site_(site) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Process-wide fault injector. All mutation is mutex-guarded; the hot
/// disarmed path is a single relaxed atomic load (see MFT_FAULT_POINT).
class FaultInjector {
 public:
  /// The singleton. Parses MFT_FAULTS from the environment on first use.
  static FaultInjector& instance();

  /// Arm `site` to fire on hits [nth, nth+times) (1-based hit counter).
  void arm(const std::string& site, std::int64_t nth, std::int64_t times = 1);

  /// Arm `site` to fire pseudo-randomly with probability `p` per hit,
  /// deterministically derived from (seed, hit index).
  void arm_random(const std::string& site, double p, std::uint64_t seed);

  /// Arm `site` to HANG on hits [nth, nth+times): the hitting thread
  /// spins inside the fault point (sleeping ~200µs per turn) until the
  /// site is disarmed via disarm()/disarm_all(), then resumes normally.
  /// Models a silently-stuck worker for watchdog tests; pair with
  /// disarm() so the thread stays joinable.
  void arm_hang(const std::string& site, std::int64_t nth,
                std::int64_t times = 1);

  /// Disarm one site (releasing any thread hung at it); hit counters for
  /// other sites are untouched.
  void disarm(const std::string& site);

  /// Disarm every site (releasing hung threads) and reset hit counters.
  void disarm_all();

  /// Hits recorded at `site` since it was armed (0 when never armed).
  std::int64_t hits(const std::string& site) const;

  /// True when any site is armed (the fast-path gate).
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  /// Slow path: record a hit at `site` and decide whether it fires.
  /// Call through MFT_FAULT_POINT, not directly.
  bool should_fire(const std::string& site);

  /// Slow path behind MFT_FAULT_POINT: records the hit and either throws
  /// FaultInjectedError (throw mode), blocks until the site is disarmed
  /// (hang mode), or returns normally (site not armed for this hit).
  void on_hit(const std::string& site);

 private:
  FaultInjector();

  std::atomic<int> armed_{0};
};

}  // namespace mft

/// Named injection site. Free when disarmed; throws FaultInjectedError
/// (or hangs until released) when armed for this hit.
#define MFT_FAULT_POINT(site)                                         \
  do {                                                                \
    ::mft::FaultInjector& mft_fi_ = ::mft::FaultInjector::instance(); \
    if (mft_fi_.armed()) mft_fi_.on_hit(site);                        \
  } while (0)
