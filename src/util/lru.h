// Deterministic LRU cache, the shared eviction policy of the engine layer.
//
// Both per-worker SizingContext pools and the runner's per-network
// Dmin/min-area cache see the same workload shape under streaming: a
// long-lived process keyed by SizingNetwork::serial(), where sharded
// reconciliation rebuilds dirty shard networks every round and therefore
// produces an unbounded stream of short-lived serials. A plain map grows
// forever; this cache bounds it with least-recently-used eviction.
//
// Properties the engine relies on (tests/eviction_test.cc):
//  - capacity 0 means unbounded (the batch-compatible default);
//  - the entry just inserted or found is most-recently-used and is never
//    the eviction victim, so a caller holding a reference to the value it
//    just acquired is safe until its next acquire;
//  - eviction order is a pure function of the access sequence — never of
//    timing — so cache-managed state stays deterministic.
//
// Not thread-safe; callers that share one cache across threads (the
// runner's NetInfoCache) wrap it in their own mutex.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace mft {

template <typename K, typename V>
class LruCache {
 public:
  /// `capacity` 0 = unbounded; otherwise at most `capacity` entries live.
  explicit LruCache(int capacity = 0) { set_capacity(capacity); }

  /// Changes the bound, evicting LRU entries if the cache is over it.
  void set_capacity(int capacity) {
    MFT_CHECK(capacity >= 0);
    capacity_ = capacity;
    trim();
  }
  int capacity() const { return capacity_; }

  /// Looks `key` up; a hit becomes most-recently-used. Returns nullptr on
  /// miss. The pointer stays valid until the next insert()/set_capacity().
  V* find(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (or overwrites) `key` as most-recently-used and evicts from
  /// the LRU end until the capacity holds again. Returns the stored value;
  /// valid until the next insert()/set_capacity().
  V& insert(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      it->second->second = std::move(value);
      return it->second->second;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    trim();
    return order_.front().second;
  }

  std::size_t size() const { return order_.size(); }
  /// Entries evicted by the capacity bound since construction.
  std::int64_t evictions() const { return evictions_; }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  void trim() {
    if (capacity_ <= 0) return;
    while (order_.size() > static_cast<std::size_t>(capacity_)) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  int capacity_ = 0;
  std::int64_t evictions_ = 0;
  std::list<std::pair<K, V>> order_;  ///< front = MRU, back = LRU
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
};

}  // namespace mft
