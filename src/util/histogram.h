// Fixed-bucket latency histogram for service-side quantile reporting.
//
// Geometric (power-of-two) bucket edges starting at 1 µs: bucket b covers
// [1e-6 · 2^b, 1e-6 · 2^(b+1)) seconds, with an underflow bucket below
// 1 µs and an overflow bucket above ~1.1e6 s. 41 fixed buckets cover nine
// decades with ≤2x relative quantile error — plenty for p50/p99 dashboards
// — at a constant 43·8 bytes, no allocation, O(1) record. Quantiles are
// resolved to the upper edge of the bucket where the cumulative count
// crosses q·total (conservative: reported p99 ≥ true p99).
//
// Not thread-safe; the daemon records under its own mutex.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>

namespace mft {

class LatencyHistogram {
 public:
  static constexpr double kBase = 1e-6;  ///< lower edge of bucket 0, seconds
  static constexpr int kBuckets = 41;    ///< geometric buckets past kBase

  void record(double seconds) {
    ++counts_[bucket(seconds)];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  /// Smallest bucket upper edge such that at least ceil(q·total) samples
  /// fall at or below it; 0 when empty. q outside (0,1] is clamped.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // ceil(q·total) without FP edge cases at q=1.
    std::uint64_t need =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (need == 0) need = 1;
    if (need > total_) need = total_;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets + 2; ++b) {
      cum += counts_[static_cast<std::size_t>(b)];
      if (cum >= need) return upper_edge(b);
    }
    return upper_edge(kBuckets + 1);
  }

  void reset() {
    counts_.fill(0);
    total_ = 0;
  }

 private:
  // Slot 0 = underflow (< kBase), slots 1..kBuckets = geometric buckets,
  // slot kBuckets+1 = overflow.
  static int bucket(double seconds) {
    if (!(seconds >= kBase)) return 0;  // underflow; NaN lands here too
    const int b = static_cast<int>(std::floor(std::log2(seconds / kBase)));
    if (b >= kBuckets) return kBuckets + 1;
    return b + 1;
  }

  static double upper_edge(int slot) {
    if (slot <= 0) return kBase;
    if (slot > kBuckets) return kBase * std::ldexp(1.0, kBuckets);
    return kBase * std::ldexp(1.0, slot);
  }

  std::array<std::uint64_t, kBuckets + 2> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace mft
