// Series/parallel transistor-network trees.
//
// The paper (§2.1) models every static CMOS gate as a series/parallel
// network of transistors in the pulldown (NMOS) plane, with the pullup
// (PMOS) plane as its structural dual. SpTree captures that topology; the
// transistor-level lowering in src/timing walks it to build the per-gate
// DAG of Fig. 1 and the Elmore load coefficients of eq. (3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

namespace mft {

/// Kind of a series/parallel tree node.
enum class SpKind {
  kLeaf,      ///< a single transistor, identified by input-pin index
  kSeries,    ///< children conduct in series (stacked)
  kParallel,  ///< children conduct in parallel
};

/// Immutable series/parallel tree describing one conduction plane of a gate.
/// Leaves carry the index of the gate input pin that drives the transistor.
class SpTree {
 public:
  /// Build a leaf for input pin `pin`.
  static SpTree leaf(int pin);
  /// Build a series composition. Requires >= 1 child.
  static SpTree series(std::vector<SpTree> children);
  /// Build a parallel composition. Requires >= 1 child.
  static SpTree parallel(std::vector<SpTree> children);

  SpKind kind() const { return kind_; }
  int pin() const {
    MFT_DCHECK(kind_ == SpKind::kLeaf);
    return pin_;
  }
  const std::vector<SpTree>& children() const { return children_; }

  /// Number of transistors (leaves) in the tree.
  int num_transistors() const;

  /// Longest series chain length — the worst-case stack depth, which
  /// bounds how many timing-DAG levels the gate contributes.
  int stack_depth() const;

  /// Structural dual: series <-> parallel, leaves unchanged. A static CMOS
  /// gate's pullup plane is the dual of its pulldown plane.
  SpTree dual() const;

  /// Human-readable form like "(a.(b+c))" for debugging and tests.
  std::string to_string() const;

 private:
  SpTree() = default;

  SpKind kind_ = SpKind::kLeaf;
  int pin_ = -1;
  std::vector<SpTree> children_;
};

}  // namespace mft
