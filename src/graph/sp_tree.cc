#include "graph/sp_tree.h"

#include <algorithm>
#include <sstream>

namespace mft {

SpTree SpTree::leaf(int pin) {
  MFT_CHECK(pin >= 0);
  SpTree t;
  t.kind_ = SpKind::kLeaf;
  t.pin_ = pin;
  return t;
}

SpTree SpTree::series(std::vector<SpTree> children) {
  MFT_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpTree t;
  t.kind_ = SpKind::kSeries;
  t.children_ = std::move(children);
  return t;
}

SpTree SpTree::parallel(std::vector<SpTree> children) {
  MFT_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpTree t;
  t.kind_ = SpKind::kParallel;
  t.children_ = std::move(children);
  return t;
}

int SpTree::num_transistors() const {
  if (kind_ == SpKind::kLeaf) return 1;
  int n = 0;
  for (const SpTree& c : children_) n += c.num_transistors();
  return n;
}

int SpTree::stack_depth() const {
  switch (kind_) {
    case SpKind::kLeaf:
      return 1;
    case SpKind::kSeries: {
      int d = 0;
      for (const SpTree& c : children_) d += c.stack_depth();
      return d;
    }
    case SpKind::kParallel: {
      int d = 0;
      for (const SpTree& c : children_) d = std::max(d, c.stack_depth());
      return d;
    }
  }
  return 0;  // unreachable
}

SpTree SpTree::dual() const {
  if (kind_ == SpKind::kLeaf) return *this;
  std::vector<SpTree> dual_children;
  dual_children.reserve(children_.size());
  for (const SpTree& c : children_) dual_children.push_back(c.dual());
  return kind_ == SpKind::kSeries ? parallel(std::move(dual_children))
                                  : series(std::move(dual_children));
}

std::string SpTree::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case SpKind::kLeaf:
      os << "p" << pin_;
      break;
    case SpKind::kSeries:
    case SpKind::kParallel: {
      const char* sep = kind_ == SpKind::kSeries ? "." : "+";
      os << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) os << sep;
        os << children_[i].to_string();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace mft
