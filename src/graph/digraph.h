// Generic directed-graph container used for circuit DAGs (paper §2.2) and as
// the substrate for STA and delay balancing.
//
// Nodes and arcs are dense integer ids. Arc lists are stored per node in
// both directions so that forward (arrival-time) and backward
// (required-time) sweeps are symmetric.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/check.h"

namespace mft {

using NodeId = std::int32_t;
using ArcId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ArcId kInvalidArc = -1;

/// A directed multigraph with dense ids. Parallel arcs and self-loops are
/// representable (self-loops are rejected by topological_order()).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes) { add_nodes(num_nodes); }

  /// Append one node; returns its id.
  NodeId add_node();

  /// Append `n` nodes; returns the id of the first.
  NodeId add_nodes(int n);

  /// Append an arc tail -> head; returns its id.
  ArcId add_arc(NodeId tail, NodeId head);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_arcs() const { return static_cast<int>(tail_.size()); }

  NodeId tail(ArcId a) const { return tail_[check_arc(a)]; }
  NodeId head(ArcId a) const { return head_[check_arc(a)]; }

  /// Arc ids leaving `v` / entering `v`.
  const std::vector<ArcId>& out_arcs(NodeId v) const { return out_[check_node(v)]; }
  const std::vector<ArcId>& in_arcs(NodeId v) const { return in_[check_node(v)]; }

  int out_degree(NodeId v) const { return static_cast<int>(out_arcs(v).size()); }
  int in_degree(NodeId v) const { return static_cast<int>(in_arcs(v).size()); }

  /// Kahn topological order over all nodes, or nullopt if the graph has a
  /// directed cycle. Deterministic: ties broken by node id.
  std::optional<std::vector<NodeId>> topological_order() const;

  /// True if the graph is a DAG.
  bool is_dag() const { return topological_order().has_value(); }

  /// Nodes with in-degree 0 / out-degree 0, in id order.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// True if `to` is reachable from `from` (BFS).
  bool reachable(NodeId from, NodeId to) const;

 private:
  NodeId check_node(NodeId v) const {
    MFT_DCHECK(v >= 0 && v < num_nodes());
    return v;
  }
  ArcId check_arc(ArcId a) const {
    MFT_DCHECK(a >= 0 && a < num_arcs());
    return a;
  }

  std::vector<NodeId> tail_, head_;
  std::vector<std::vector<ArcId>> out_, in_;
};

}  // namespace mft
