#include "graph/digraph.h"

#include <algorithm>
#include <deque>

namespace mft {

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

NodeId Digraph::add_nodes(int n) {
  MFT_CHECK(n >= 0);
  NodeId first = num_nodes();
  out_.resize(out_.size() + static_cast<std::size_t>(n));
  in_.resize(in_.size() + static_cast<std::size_t>(n));
  return first;
}

ArcId Digraph::add_arc(NodeId tail, NodeId head) {
  check_node(tail);
  check_node(head);
  ArcId a = num_arcs();
  tail_.push_back(tail);
  head_.push_back(head);
  out_[tail].push_back(a);
  in_[head].push_back(a);
  return a;
}

std::optional<std::vector<NodeId>> Digraph::topological_order() const {
  std::vector<int> indeg(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) indeg[v] = in_degree(v);
  // Min-id-first queue for determinism. A plain FIFO would also be
  // deterministic, but id order makes test expectations readable.
  std::vector<NodeId> order;
  order.reserve(num_nodes());
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (indeg[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (ArcId a : out_arcs(v)) {
      NodeId h = head(a);
      if (--indeg[h] == 0) ready.push_back(h);
    }
  }
  if (static_cast<int>(order.size()) != num_nodes()) return std::nullopt;
  return order;
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (in_degree(v) == 0) out.push_back(v);
  return out;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (out_degree(v) == 0) out.push_back(v);
  return out;
}

bool Digraph::reachable(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  if (from == to) return true;
  std::vector<char> seen(num_nodes(), 0);
  std::deque<NodeId> queue{from};
  seen[from] = 1;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (ArcId a : out_arcs(v)) {
      NodeId h = head(a);
      if (h == to) return true;
      if (!seen[h]) {
        seen[h] = 1;
        queue.push_back(h);
      }
    }
  }
  return false;
}

}  // namespace mft
